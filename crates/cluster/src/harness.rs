//! The evaluation harness: every paper artifact behind one API.
//!
//! * [`Experiment`] — a figure/table as a first-class value: an id, a
//!   title, tags, and a `run` that yields a machine-readable
//!   [`Report`].
//! * [`registry()`] — every built-in experiment, in presentation order.
//!   Adding a scenario is a one-file change: implement the trait in a
//!   new module and list it here; the `repro` CLI, the benches, and the
//!   JSON/CSV/markdown emitters need no edits.
//! * [`RunCtx`] — what an experiment may spend: the [`Scale`]
//!   (fidelity), a thread budget, and a progress callback.
//! * [`Runner`] — a deterministic scoped-thread worker pool. Every
//!   simulation cell ([`Sim::run`](crate::sim::Sim::run)) owns its
//!   seeded RNG and depends only on its `Scenario`, so fanning cells
//!   out across cores is bit-identical to running them serially —
//!   results are reassembled in submission order, asserted by
//!   `tests/harness_determinism.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use netclone_stats::Report;

use crate::experiments::panel::{Panel, Series};
use crate::experiments::scale::Scale;
use crate::scenario::Scenario;
use crate::sim::Sim;
use crate::sweep::SweepPoint;

/// One paper artifact (figure, table, or ablation suite).
///
/// Implementations are zero-sized markers; all configuration arrives
/// through the [`RunCtx`].
pub trait Experiment: Sync {
    /// Stable identifier (`fig07`, `tab01`, …) — the CLI name.
    fn id(&self) -> &'static str;
    /// Human title (the paper caption).
    fn title(&self) -> &'static str;
    /// Free-form labels for `repro --list` filtering and docs.
    fn tags(&self) -> &'static [&'static str];
    /// Topology shape the experiment simulates (shown by `repro --list`).
    /// The paper's experiments all run the single-rack testbed; the
    /// scale-out experiments override this.
    fn topology(&self) -> &'static str {
        "single-rack"
    }
    /// Runs the experiment and returns the unified artifact.
    fn run(&self, ctx: &RunCtx) -> Report;
}

/// A progress sink: receives `label: done/total` messages, possibly
/// from several worker threads at once.
type ProgressFn = Box<dyn Fn(&str) + Send + Sync>;

/// Execution budget and observability for one experiment run.
pub struct RunCtx {
    /// Simulation fidelity (windows, sweep points, repeats).
    pub scale: Scale,
    /// Worker-thread budget; 1 means run strictly serially.
    pub jobs: usize,
    /// Per-run shard budget: how many event-loop shards each simulation
    /// may use (`0` = auto, one per rack; `1` = serial, the default).
    /// Orthogonal to `jobs`: `jobs` fans *cells* (independent scenarios)
    /// across threads, `shards` parallelises *within* one cell, and both
    /// are bit-identical to serial execution, so they compose freely.
    pub shards: usize,
    /// Fat-tree radix override for topology experiments (`None` = the
    /// experiment's per-scale default).
    pub fattree_k: Option<usize>,
    /// Single-oversubscription override for topology experiments
    /// (`None` = sweep the experiment's default ratios).
    pub oversub: Option<f64>,
    progress: Option<ProgressFn>,
}

/// The machine's full parallelism (≥ 1) — the default thread budget
/// for the `repro` CLI and the bench drivers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl RunCtx {
    /// A serial context at the given scale.
    pub fn new(scale: Scale) -> Self {
        RunCtx {
            scale,
            jobs: 1,
            shards: 1,
            fattree_k: None,
            oversub: None,
            progress: None,
        }
    }

    /// Overrides the fat-tree radix (`k` even, ≥ 2) for topology
    /// experiments.
    pub fn with_fattree_k(mut self, k: usize) -> Self {
        self.fattree_k = Some(k);
        self
    }

    /// Pins topology experiments to a single oversubscription ratio
    /// instead of their default sweep.
    pub fn with_oversub(mut self, ratio: f64) -> Self {
        self.oversub = Some(ratio);
        self
    }

    /// Sets the worker-thread budget (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-run shard budget (`0` = auto, one shard per rack).
    /// Results are bit-identical at any setting; single-rack scenarios
    /// always run serially (the shard count clamps to the rack count).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Runs one simulation under this context's shard budget.
    pub fn run_sim(&self, scenario: Scenario) -> crate::metrics::RunResult {
        Sim::run_with_shards(scenario, self.effective_shards())
    }

    /// The shard count handed to [`Sim::run_with_shards`]: the budget,
    /// with `0` meaning "as many as the topology has racks".
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            usize::MAX
        } else {
            self.shards
        }
    }

    /// Installs a progress callback, invoked once per finished cell with
    /// a `label: done/total` message (from worker threads, so it must be
    /// `Send + Sync`).
    pub fn with_progress(mut self, f: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.progress = Some(Box::new(f));
        self
    }

    /// Emits a progress message, if a callback is installed.
    pub fn progress(&self, msg: &str) {
        if let Some(f) = &self.progress {
            f(msg);
        }
    }

    /// Maps `f` over `items` on the context's worker pool, preserving
    /// input order, and ticks the progress callback per finished item.
    pub fn map<T, R, F>(&self, label: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let total = items.len();
        let done = AtomicUsize::new(0);
        Runner::new(self.jobs).map(items, |item| {
            let r = f(item);
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            self.progress(&format!("{label}: {d}/{total}"));
            r
        })
    }
}

/// A deterministic fork-join worker pool over scoped `std` threads.
///
/// `map` returns results in input order no matter how the OS schedules
/// the workers; with `jobs == 1` (or a single item) it degenerates to a
/// plain in-thread iterator, so the serial path is literally serial.
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A pool with the given thread budget (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// Maps `f` over `items`, preserving input order.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("each cell is claimed exactly once");
                    let r = f(item);
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("worker pool completed every cell")
            })
            .collect()
    }
}

/// One scheme's load sweep within one panel, ready to fan out.
pub struct SweepSpec {
    /// Panel caption the resulting series belongs to.
    pub panel: String,
    /// Scheme label (legend entry).
    pub scheme: &'static str,
    /// The scenario template; `offered_rps` is overwritten per rate.
    pub template: Scenario,
    /// Offered rates to run, requests/second.
    pub rates: Vec<f64>,
}

/// Runs every (spec, rate) cell of `specs` on the context's worker pool
/// and reassembles the results into panels, preserving spec and rate
/// order — the shared engine behind every sweep figure.
pub fn run_sweeps(ctx: &RunCtx, label: &str, specs: Vec<SweepSpec>) -> Vec<Panel> {
    let mut cells: Vec<(usize, Scenario)> = Vec::new();
    for (si, spec) in specs.iter().enumerate() {
        for &rate in &spec.rates {
            let mut s = spec.template.clone();
            s.offered_rps = rate;
            cells.push((si, s));
        }
    }
    let points = ctx.map(label, cells, |(si, s)| {
        let offered = s.offered_rps;
        (si, SweepPoint::from_run(offered, ctx.run_sim(s)))
    });
    let mut per_spec: Vec<Vec<SweepPoint>> = specs.iter().map(|_| Vec::new()).collect();
    for (si, p) in points {
        per_spec[si].push(p);
    }
    let mut panels: Vec<Panel> = Vec::new();
    for (spec, points) in specs.into_iter().zip(per_spec) {
        let series = Series {
            scheme: spec.scheme,
            points,
        };
        match panels.iter_mut().find(|p| p.name == spec.panel) {
            Some(p) => p.series.push(series),
            None => panels.push(Panel {
                name: spec.panel,
                series: vec![series],
            }),
        }
    }
    panels
}

/// Every built-in experiment, in presentation order (tables first, then
/// the figures, then this reproduction's multi-rack sweep and
/// ablations).
pub fn registry() -> Vec<Box<dyn Experiment>> {
    use crate::experiments::*;
    vec![
        Box::new(table1::Tab01),
        Box::new(resources::TabRes),
        Box::new(fig07::Fig07),
        Box::new(fig08::Fig08),
        Box::new(fig09::Fig09),
        Box::new(fig10::Fig10),
        Box::new(fig11::Fig11),
        Box::new(fig12::Fig12),
        Box::new(fig13::Fig13Exp),
        Box::new(fig14::Fig14),
        Box::new(fig15::Fig15),
        Box::new(fig16::Fig16Exp),
        Box::new(multirack::MultiRack),
        Box::new(fattree::FatTree),
        Box::new(adversarial::Adversarial),
        Box::new(chaos::Chaos),
        Box::new(ablations::Ablations),
    ]
}

/// Looks up one experiment by id.
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.id() == id)
}

/// Registry ids closest to a mistyped `id`, best first (at most three):
/// substring matches, then ids within Levenshtein distance 2.
pub fn suggest(id: &str) -> Vec<&'static str> {
    let mut scored: Vec<(usize, &'static str)> = registry()
        .iter()
        .filter_map(|e| {
            let known = e.id();
            if known.contains(id) || id.contains(known) {
                Some((0, known))
            } else {
                let d = levenshtein(id, known);
                (d <= 2).then_some((d, known))
            }
        })
        .collect();
    scored.sort();
    scored.truncate(3);
    scored.into_iter().map(|(_, id)| id).collect()
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..100).collect();
        let serial = Runner::new(1).map(items.clone(), |x| x * x);
        for jobs in [2, 4, 16, 128] {
            let par = Runner::new(jobs).map(items.clone(), |x| x * x);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn runner_handles_empty_and_single() {
        assert_eq!(Runner::new(8).map(Vec::<u32>::new(), |x| x), vec![]);
        assert_eq!(Runner::new(8).map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn ctx_map_ticks_progress_once_per_cell() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let ticks = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&ticks);
        let ctx = RunCtx::new(Scale::Smoke)
            .with_jobs(4)
            .with_progress(move |_| {
                t2.fetch_add(1, Ordering::Relaxed);
            });
        let out = ctx.map("t", (0..10).collect(), |x: i32| x);
        assert_eq!(out.len(), 10);
        assert_eq!(ticks.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn registry_ids_are_unique_and_titled() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 17, "duplicate experiment ids");
        for e in &reg {
            assert!(!e.title().is_empty(), "{} has no title", e.id());
            assert!(!e.tags().is_empty(), "{} has no tags", e.id());
        }
    }

    #[test]
    fn find_and_suggest() {
        assert!(find("fig07").is_some());
        assert!(find("multirack").is_some());
        assert!(find("fig99").is_none());
        assert!(suggest("fig0").contains(&"fig07"));
        assert_eq!(suggest("fig13").first(), Some(&"fig13"));
        assert!(suggest("ablation").contains(&"ablations"));
        assert!(suggest("tab-re").contains(&"tab-res"));
        assert!(suggest("zzzzzz").is_empty());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("fig07", "fig07"), 0);
        assert_eq!(levenshtein("fig07", "fig08"), 1);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
