//! Load sweeps: run one scenario template across offered rates and collect
//! the (throughput, tail latency) series every figure plots.

use crate::metrics::RunResult;
use crate::scenario::Scenario;
use crate::sim::Sim;

/// One point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered load, MRPS.
    pub offered_mrps: f64,
    /// Achieved goodput, MRPS.
    pub achieved_mrps: f64,
    /// Median latency, μs.
    pub p50_us: f64,
    /// 99th-percentile latency, μs (the paper's headline metric).
    pub p99_us: f64,
    /// 99.9th-percentile latency, μs.
    pub p999_us: f64,
    /// Mean latency, μs.
    pub mean_us: f64,
    /// Fraction of requests the switch cloned (NetClone runs).
    pub clone_rate: f64,
    /// Fraction of server responses reporting an empty queue.
    pub empty_queue_fraction: f64,
    /// The full run result (for scheme-specific detail).
    pub run: RunResult,
}

impl SweepPoint {
    /// Derives a sweep point from one finished run at `offered_rps`.
    pub fn from_run(offered_rps: f64, run: RunResult) -> Self {
        let (p50, p99, p999) = run.percentiles_us();
        SweepPoint {
            offered_mrps: offered_rps / 1e6,
            achieved_mrps: run.achieved_mrps(),
            p50_us: p50,
            p99_us: p99,
            p999_us: p999,
            mean_us: run.mean_us(),
            clone_rate: run.switch.clone_rate(),
            empty_queue_fraction: run.empty_queue_fraction(),
            run,
        }
    }
}

/// Runs `template` at each rate in `rates_rps` (total across clients),
/// serially. The figures fan the same cells out across threads via
/// [`harness::run_sweeps`](crate::harness::run_sweeps).
pub fn sweep(template: &Scenario, rates_rps: &[f64]) -> Vec<SweepPoint> {
    rates_rps
        .iter()
        .map(|&rate| {
            let mut s = template.clone();
            s.offered_rps = rate;
            SweepPoint::from_run(rate, Sim::run(s))
        })
        .collect()
}

/// Evenly spaced rates from `lo_frac` to `hi_frac` of a scenario's
/// capacity.
pub fn capacity_fractions(template: &Scenario, lo_frac: f64, hi_frac: f64, n: usize) -> Vec<f64> {
    let cap = template.capacity_rps();
    assert!(n >= 2, "a sweep needs at least two points");
    (0..n)
        .map(|i| {
            let f = lo_frac + (hi_frac - lo_frac) * i as f64 / (n - 1) as f64;
            cap * f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use netclone_workloads::exp25;

    #[test]
    fn capacity_fractions_are_monotone() {
        let t = Scenario::synthetic_default(Scheme::Baseline, exp25(), 1e6);
        let rates = capacity_fractions(&t, 0.1, 0.9, 5);
        assert_eq!(rates.len(), 5);
        for w in rates.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((rates[0] - t.capacity_rps() * 0.1).abs() < 1.0);
    }
}
