//! # netclone-cluster
//!
//! The evaluation testbed as a deterministic discrete-event simulation:
//! open-loop clients, a programmable ToR switch running any of the compared
//! schemes, and multi-worker servers — the §5.1 setup of the paper (8
//! machines: 2 clients + 6 workers by default, one worker donated to the
//! coordinator for the LÆDGE comparison).
//!
//! One simulation ([`sim::Sim`]) runs one (scheme, workload, offered-load)
//! point and yields a [`metrics::RunResult`]; [`sweep()`](sweep::sweep)
//! drives load sweeps;
//! [`experiments`] packages every figure and table of the paper's
//! evaluation as an [`harness::Experiment`] producing a unified
//! [`netclone_stats::Report`]; [`harness::registry()`] lists them all
//! and [`harness::Runner`] fans their cells out across cores with
//! results bit-identical to serial execution.
//!
//! All physical constants live in [`calib`] — one set, used by every
//! experiment, documented with their rationale.

pub mod build;
pub mod calib;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod scenario;
pub mod scheme;
pub mod sim;
pub mod sweep;

pub use build::{build_engine, ScenarioBuilder};
pub use harness::{registry, Experiment, RunCtx, Runner};
pub use metrics::RunResult;
pub use scenario::{Scenario, ServerSpec, SwitchFailurePlan, Workload};
pub use scheme::Scheme;
pub use sim::Sim;
pub use sweep::{sweep, SweepPoint};
