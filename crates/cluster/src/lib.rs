//! # netclone-cluster
//!
//! The evaluation testbed as a deterministic discrete-event simulation:
//! open-loop clients, a programmable switch fabric running any of the
//! compared schemes, and multi-worker servers — the §5.1 setup of the
//! paper (8 machines: 2 clients + 6 workers by default, one worker
//! donated to the coordinator for the LÆDGE comparison). The fabric
//! shape is a scenario dimension ([`topology::Topology`]): the default
//! single rack is the paper's testbed; multi-rack shapes build the §3.7
//! two-tier leaf/spine deployment with one engine per switch
//! ([`topology::Fabric`]).
//!
//! One simulation ([`sim::Sim`]) runs one (scheme, workload, offered-load)
//! point and yields a [`metrics::RunResult`]; [`sweep()`](sweep::sweep)
//! drives load sweeps;
//! [`experiments`] packages every figure and table of the paper's
//! evaluation as an [`harness::Experiment`] producing a unified
//! [`netclone_stats::Report`]; [`harness::registry()`] lists them all
//! and [`harness::Runner`] fans their cells out across cores with
//! results bit-identical to serial execution.
//!
//! All physical constants live in [`calib`] — one set, used by every
//! experiment, documented with their rationale.

pub mod build;
pub mod calib;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub(crate) mod payload;
pub mod scenario;
pub mod scheme;
pub(crate) mod shard;
pub mod sim;
pub mod sweep;
pub mod topology;

pub use build::{build_engine, build_fabric, ScenarioBuilder};
pub use harness::{registry, Experiment, RunCtx, Runner};
pub use metrics::RunResult;
pub use scenario::{
    DegradationPlan, DrainPlan, Fault, FaultTimeline, LinkFlapPlan, RetryPolicy, Scenario,
    ServerSpec, ServiceModel, SlowdownPlan, SwitchFailurePlan, Workload,
};
pub use scheme::Scheme;
pub use sim::Sim;
pub use sweep::{sweep, SweepPoint};
pub use topology::{Fabric, Hop, Placement, Topology};
