//! One module per paper artifact: every figure and table of the
//! evaluation, plus the §4.1 resource report and this reproduction's
//! ablations. Each returns structured results that render to markdown
//! (`to_table`) and CSV.

pub mod panel;
pub mod scale;

pub mod ablations;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod resources;
pub mod table1;

pub use scale::Scale;
