//! One module per paper artifact: every figure and table of the
//! evaluation, plus the §4.1 resource report and this reproduction's
//! ablations. Each module keeps its typed result (for shape assertions)
//! and exposes an [`Experiment`](crate::harness::Experiment) marker that
//! the [`harness registry`](crate::harness::registry) lists; all output
//! flows through the unified [`netclone_stats::Report`] artifact.

pub mod panel;
pub mod scale;

pub mod ablations;
pub mod adversarial;
pub mod chaos;
pub mod fattree;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod multirack;
pub mod resources;
pub mod table1;

pub use scale::Scale;
