//! Conservative shard execution and result merging.
//!
//! [`ShardCoordinator`] drives the per-rack [`Shard`]s built by
//! [`ScenarioBuilder::build_shards`]: serially when there is one shard
//! (the default, and any single-rack scenario), or on one thread per
//! shard under the conservative lookahead protocol from
//! [`netclone_des::sync`].
//!
//! ## The window protocol
//!
//! The only cross-shard interaction is an upper-tier-forwarded packet
//! landing on a foreign leaf (or its downlink queue), and that takes at
//! least
//!
//! ```text
//! lookahead = 2 × (switch pass latency + inter-rack link latency)   (fixed-latency hops)
//! lookahead = 2 × switch pass latency + inter-rack link latency     (congestion-aware links)
//! ```
//!
//! of simulated time after the event that emits it (leaf pass → uplink →
//! upper pass → downlink; with links the packet is handed to the foreign
//! rack *at* its downlink head, one propagation earlier — queueing only
//! adds delay). So the shards advance in rounds:
//!
//! 1. every shard publishes its next-event time on the
//!    [`HorizonBoard`], then waits at a barrier;
//! 2. every shard reads the same board minimum `m` (all idle → done) and
//!    executes its events with `time < m + lookahead`, buffering
//!    outbound cross-shard messages in per-destination outboxes;
//! 3. outboxes flush into the destinations' mailboxes, everybody waits
//!    at a second barrier, then drains its own mailbox — every delivered
//!    message is timestamped at or after the window end (asserted in
//!    debug builds) — and the round repeats.
//!
//! The shard owning `m` always executes at least one event per round, so
//! the protocol makes progress; the barriers are [`SpinBarrier`]s, which
//! yield after a brief spin, so shard counts above the machine's core
//! count degrade into time-slicing instead of livelock.
//!
//! Bit-identity of the merged result is a property of the event *keys*,
//! not of the schedule — see [`crate::sim`] and [`netclone_des::sync`] —
//! so none of this depends on thread timing.

use std::sync::Mutex;

use netclone_core::SwitchCounters;
use netclone_des::sync::window_end;
use netclone_des::{HorizonBoard, SpinBarrier};
use netclone_stats::LatencyHistogram;

use crate::build::ScenarioBuilder;
use crate::metrics::{LinkStat, LinkTotals, RunResult};
use crate::sim::{CrossMsg, Shard};

/// Owns a run's shards from build to merged [`RunResult`].
pub(crate) struct ShardCoordinator {
    shards: Vec<Shard>,
    /// The conservative window extension: the minimum simulated time
    /// between a cross-shard send and its delivery.
    lookahead_ns: u64,
}

impl ShardCoordinator {
    /// Builds the testbed partitioned into (up to) `shards` shards;
    /// `traced` additionally records every executed event's `(time, key)`.
    pub(crate) fn new(builder: ScenarioBuilder, shards: usize, traced: bool) -> Self {
        let (shards, lookahead_ns) = builder.build_shards(shards, traced);
        ShardCoordinator {
            shards,
            lookahead_ns,
        }
    }

    /// Runs the simulation to completion and merges the results.
    pub(crate) fn run(mut self) -> (RunResult, Option<Vec<(u64, u64)>>) {
        if self.shards.len() == 1 {
            // The serial path: one queue, drained in key order. No
            // barriers, no atomics — the pre-sharding event loop.
            let shard = &mut self.shards[0];
            while let Some((t, tie, ev)) = shard.q.pop_keyed() {
                if let Some(trace) = &mut shard.trace {
                    trace.push((t.as_ns(), tie));
                }
                shard.handle(t.as_ns(), ev);
            }
        } else {
            self.run_windowed();
        }
        self.merge()
    }

    /// One thread per shard, advancing in conservative windows.
    fn run_windowed(&mut self) {
        let n = self.shards.len();
        let lookahead = self.lookahead_ns;
        debug_assert!(lookahead > 0, "a zero lookahead cannot make progress");
        let board = HorizonBoard::new(n);
        let barrier = SpinBarrier::new(n);
        let mailboxes: Vec<Mutex<Vec<CrossMsg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (k, shard) in self.shards.iter_mut().enumerate() {
                let (board, barrier, mailboxes) = (&board, &barrier, &mailboxes);
                s.spawn(move || loop {
                    board.publish(k, shard.q.peek_time());
                    barrier.wait();
                    // Between the barrier above and the one below nobody
                    // publishes, so every shard reads the same minimum
                    // and either all break (all idle, mailboxes empty by
                    // construction) or all continue.
                    let Some(w_end) = window_end(board.min(), lookahead) else {
                        break;
                    };
                    while shard.q.peek_time().is_some_and(|t| t.as_ns() < w_end) {
                        let (t, tie, ev) = shard.q.pop_keyed().expect("peeked event");
                        if let Some(trace) = &mut shard.trace {
                            trace.push((t.as_ns(), tie));
                        }
                        shard.handle(t.as_ns(), ev);
                    }
                    for (dst, out) in shard.outbox.iter_mut().enumerate() {
                        if !out.is_empty() {
                            mailboxes[dst].lock().expect("mailbox").append(out);
                        }
                    }
                    barrier.wait();
                    let inbound = std::mem::take(&mut *mailboxes[k].lock().expect("mailbox"));
                    shard.deliver(w_end, inbound);
                });
            }
        });
        debug_assert!(
            mailboxes
                .iter()
                .all(|m| m.lock().expect("mailbox").is_empty()),
            "undelivered cross-shard messages at termination"
        );
    }

    /// Assembles the [`RunResult`] — deterministically: every vector is
    /// walked in global index order, every scalar is a sum, and the one
    /// order-sensitive-looking piece (the spine counter replicas) is a
    /// `SwitchCounters::merge`, which is field-wise addition.
    fn merge(mut self) -> (RunResult, Option<Vec<(u64, u64)>>) {
        let shards = &mut self.shards;
        let nshards = shards.len();
        let scenario = shards[0].scenario.clone();
        let racks = shards[0].racks;
        let n_clients = scenario.n_clients;
        let n_servers = scenario.servers.len();
        for sh in shards.iter() {
            debug_assert_eq!(
                sh.payloads.live(),
                0,
                "shard {} leaked {} payload slots",
                sh.id,
                sh.payloads.live()
            );
            debug_assert!(
                sh.q.is_empty(),
                "shard {} stopped with queued events",
                sh.id
            );
        }

        let mut latency = LatencyHistogram::new();
        let mut generated = 0u64;
        let mut redundant = 0u64;
        let mut clone_wins = 0u64;
        let mut lost = 0u64;
        let mut retried = 0u64;
        let mut retry_wins = 0u64;
        let mut budget_exhausted = 0u64;
        let mut lifetime = netclone_hosts::LifetimeCounters::default();
        let mut outstanding = 0u64;
        for cid in 0..n_clients {
            let owner = shards[0].client_leaf[cid] % nshards;
            let c = shards[owner].clients[cid].as_ref().expect("client owner");
            latency.merge(c.latencies());
            generated += c.stats().generated;
            redundant += c.stats().redundant;
            clone_wins += c.stats().clone_wins;
            lost += c.stats().lost;
            retried += c.stats().retried;
            retry_wins += c.stats().retry_wins;
            budget_exhausted += c.stats().budget_exhausted;
            let lt = c.lifetime();
            lifetime.generated += lt.generated;
            lifetime.completed += lt.completed;
            lifetime.lost += lt.lost;
            outstanding += c.outstanding() as u64;
        }

        // Per-switch windows in fabric index order (leaves, then the
        // upper tier): each leaf's from its owner, each upper switch's as
        // the merge of every shard's replica delta.
        let upper_count = shards[0].upper.len();
        let mut per_switch: Vec<SwitchCounters> = Vec::with_capacity(racks + upper_count);
        for r in 0..racks {
            let sh = &shards[r % nshards];
            let e = sh.engines[r].as_ref().expect("leaf owner");
            per_switch.push(e.counters().since(&sh.switch_counters_at_warmup[r]));
        }
        for i in 0..upper_count {
            let mut merged = SwitchCounters::default();
            for sh in shards.iter() {
                merged.merge(
                    &sh.upper[i]
                        .counters()
                        .since(&sh.upper_counters_at_warmup[i]),
                );
            }
            per_switch.push(merged);
        }
        let switch: SwitchCounters = per_switch.iter().sum();

        // Link stats, in deterministic fabric order: host access links
        // (clients, servers, coordinator), then each leaf's uplinks and
        // downlinks. Only congested links (a drop or an ECN mark) get a
        // row; the totals cover every link. Counters are whole-run — the
        // conservation identities (offered == forwarded + dropped) only
        // hold unwindowed.
        let mut link_stats: Vec<LinkStat> = Vec::new();
        let mut link_totals: Option<LinkTotals> = None;
        if scenario.links.is_some() {
            let mut totals = LinkTotals::default();
            {
                let mut take =
                    |name: String,
                     c: netclone_linksim::LinkCounters,
                     tier: &mut netclone_linksim::LinkCounters| {
                        tier.add(&c);
                        if c.dropped > 0 || c.ecn_marked > 0 {
                            link_stats.push(LinkStat {
                                link: name,
                                forwarded: c.forwarded,
                                dropped: c.dropped,
                                ecn_marked: c.ecn_marked,
                            });
                        }
                    };
                let client_leaf = shards[0].client_leaf.clone();
                let server_leaf = shards[0].server_leaf.clone();
                let coord_leaf = shards[0].coord_leaf;
                for cid in 0..n_clients {
                    let ls = shards[client_leaf[cid] % nshards]
                        .links
                        .as_ref()
                        .expect("links enabled");
                    let up = ls.client_up[cid].as_ref().expect("client owner").counters();
                    take(format!("client{cid}.up"), up, &mut totals.edge);
                    let down = ls.client_down[cid]
                        .as_ref()
                        .expect("client owner")
                        .counters();
                    take(format!("client{cid}.down"), down, &mut totals.edge);
                }
                for idx in 0..n_servers {
                    let ls = shards[server_leaf[idx] % nshards]
                        .links
                        .as_ref()
                        .expect("links enabled");
                    let up = ls.server_up[idx].as_ref().expect("server owner").counters();
                    take(format!("server{idx}.up"), up, &mut totals.edge);
                    let down = ls.server_down[idx]
                        .as_ref()
                        .expect("server owner")
                        .counters();
                    take(format!("server{idx}.down"), down, &mut totals.edge);
                }
                {
                    let ls = shards[coord_leaf % nshards]
                        .links
                        .as_ref()
                        .expect("links enabled");
                    let up = ls.coord_up.as_ref().expect("coord owner").counters();
                    take("coord.up".into(), up, &mut totals.edge);
                    let down = ls.coord_down.as_ref().expect("coord owner").counters();
                    take("coord.down".into(), down, &mut totals.edge);
                }
                for r in 0..racks {
                    let ls = shards[r % nshards].links.as_ref().expect("links enabled");
                    for (j, l) in ls.up[r].iter().enumerate() {
                        take(format!("leaf{r}.up{j}"), l.counters(), &mut totals.up);
                    }
                    for (j, l) in ls.down[r].iter().enumerate() {
                        take(format!("leaf{r}.down{j}"), l.counters(), &mut totals.down);
                    }
                }
            }
            link_totals = Some(totals);
        }

        let mut clone_drops = 0;
        let mut idle_reports = 0;
        let mut responses = 0;
        let mut per_server_served = Vec::with_capacity(n_servers);
        for idx in 0..n_servers {
            let sh = &shards[shards[0].server_leaf[idx] % nshards];
            let st = sh.servers[idx].as_ref().expect("server owner").stats();
            let b = sh.server_stats_at_warmup[idx];
            clone_drops += st.clones_dropped - b.clones_dropped;
            idle_reports += st.idle_reports - b.idle_reports;
            responses += st.responses - b.responses;
            per_server_served.push(st.served - b.served);
        }

        let mut throughput = shards[0].throughput.clone();
        for sh in &shards[1..] {
            throughput.merge(&sh.throughput);
        }
        let completed: u64 = shards.iter().map(|s| s.completed_in_window).sum();
        let packets_lost: u64 = shards.iter().map(|s| s.packets_lost).sum();
        let events: u64 = shards.iter().map(|s| s.events_scheduled).sum();
        let measure_secs = scenario.measure_ns as f64 / 1e9;

        let trace = shards[0].trace.is_some().then(|| {
            let mut t: Vec<(u64, u64)> = shards
                .iter_mut()
                .flat_map(|s| s.trace.take().expect("traced shard"))
                .collect();
            if nshards > 1 {
                // A serial trace is already in execution order; a merged
                // one is sorted into the global key order, with the
                // broadcast control events (one identically-keyed replica
                // per shard) collapsed.
                t.sort_unstable();
                t.dedup();
            }
            t
        });

        let result = RunResult {
            scheme: scenario.scheme.label(),
            workload: scenario.workload.label(),
            offered_rps: scenario.offered_rps,
            achieved_rps: completed as f64 / measure_secs,
            latency,
            generated,
            completed,
            client_redundant: redundant,
            client_clone_wins: clone_wins,
            client_lost: lost,
            client_retried: retried,
            client_retry_wins: retry_wins,
            client_budget_exhausted: budget_exhausted,
            lifetime,
            client_outstanding: outstanding,
            switch,
            server_clone_drops: clone_drops,
            server_idle_reports: idle_reports,
            server_responses: responses,
            throughput_series: throughput,
            packets_lost,
            per_server_served,
            per_switch,
            events,
            link_stats,
            link_totals,
        };
        (result, trace)
    }
}
