//! Conservative shard execution and result merging.
//!
//! [`ShardCoordinator`] drives the per-rack [`Shard`]s built by
//! [`ScenarioBuilder::build_shards`]: serially when there is one shard
//! (the default, and any single-rack scenario), or on one thread per
//! shard under the conservative lookahead protocol from
//! [`netclone_des::sync`].
//!
//! ## The window protocol
//!
//! The only cross-shard interaction is a spine-forwarded packet landing
//! on a foreign leaf, and that takes at least
//!
//! ```text
//! lookahead = 2 × (switch pass latency + inter-rack link latency)
//! ```
//!
//! of simulated time after the event that emits it (leaf pass → uplink →
//! spine pass → downlink). So the shards advance in rounds:
//!
//! 1. every shard publishes its next-event time on the
//!    [`HorizonBoard`], then waits at a barrier;
//! 2. every shard reads the same board minimum `m` (all idle → done) and
//!    executes its events with `time < m + lookahead`, buffering
//!    outbound cross-shard messages in per-destination outboxes;
//! 3. outboxes flush into the destinations' mailboxes, everybody waits
//!    at a second barrier, then drains its own mailbox — every delivered
//!    message is timestamped at or after the window end (asserted in
//!    debug builds) — and the round repeats.
//!
//! The shard owning `m` always executes at least one event per round, so
//! the protocol makes progress; the barriers are [`SpinBarrier`]s, which
//! yield after a brief spin, so shard counts above the machine's core
//! count degrade into time-slicing instead of livelock.
//!
//! Bit-identity of the merged result is a property of the event *keys*,
//! not of the schedule — see [`crate::sim`] and [`netclone_des::sync`] —
//! so none of this depends on thread timing.

use std::sync::Mutex;

use netclone_core::SwitchCounters;
use netclone_des::sync::window_end;
use netclone_des::{HorizonBoard, SpinBarrier};
use netclone_stats::LatencyHistogram;

use crate::build::ScenarioBuilder;
use crate::metrics::RunResult;
use crate::sim::{CrossMsg, Shard};

/// Owns a run's shards from build to merged [`RunResult`].
pub(crate) struct ShardCoordinator {
    shards: Vec<Shard>,
    /// The conservative window extension: the minimum simulated time
    /// between a cross-shard send and its delivery.
    lookahead_ns: u64,
}

impl ShardCoordinator {
    /// Builds the testbed partitioned into (up to) `shards` shards;
    /// `traced` additionally records every executed event's `(time, key)`.
    pub(crate) fn new(builder: ScenarioBuilder, shards: usize, traced: bool) -> Self {
        let (shards, lookahead_ns) = builder.build_shards(shards, traced);
        ShardCoordinator {
            shards,
            lookahead_ns,
        }
    }

    /// Runs the simulation to completion and merges the results.
    pub(crate) fn run(mut self) -> (RunResult, Option<Vec<(u64, u64)>>) {
        if self.shards.len() == 1 {
            // The serial path: one queue, drained in key order. No
            // barriers, no atomics — the pre-sharding event loop.
            let shard = &mut self.shards[0];
            while let Some((t, tie, ev)) = shard.q.pop_keyed() {
                if let Some(trace) = &mut shard.trace {
                    trace.push((t.as_ns(), tie));
                }
                shard.handle(t.as_ns(), ev);
            }
        } else {
            self.run_windowed();
        }
        self.merge()
    }

    /// One thread per shard, advancing in conservative windows.
    fn run_windowed(&mut self) {
        let n = self.shards.len();
        let lookahead = self.lookahead_ns;
        debug_assert!(lookahead > 0, "a zero lookahead cannot make progress");
        let board = HorizonBoard::new(n);
        let barrier = SpinBarrier::new(n);
        let mailboxes: Vec<Mutex<Vec<CrossMsg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (k, shard) in self.shards.iter_mut().enumerate() {
                let (board, barrier, mailboxes) = (&board, &barrier, &mailboxes);
                s.spawn(move || loop {
                    board.publish(k, shard.q.peek_time());
                    barrier.wait();
                    // Between the barrier above and the one below nobody
                    // publishes, so every shard reads the same minimum
                    // and either all break (all idle, mailboxes empty by
                    // construction) or all continue.
                    let Some(w_end) = window_end(board.min(), lookahead) else {
                        break;
                    };
                    while shard.q.peek_time().is_some_and(|t| t.as_ns() < w_end) {
                        let (t, tie, ev) = shard.q.pop_keyed().expect("peeked event");
                        if let Some(trace) = &mut shard.trace {
                            trace.push((t.as_ns(), tie));
                        }
                        shard.handle(t.as_ns(), ev);
                    }
                    for (dst, out) in shard.outbox.iter_mut().enumerate() {
                        if !out.is_empty() {
                            mailboxes[dst].lock().expect("mailbox").append(out);
                        }
                    }
                    barrier.wait();
                    let inbound = std::mem::take(&mut *mailboxes[k].lock().expect("mailbox"));
                    shard.deliver(w_end, inbound);
                });
            }
        });
        debug_assert!(
            mailboxes
                .iter()
                .all(|m| m.lock().expect("mailbox").is_empty()),
            "undelivered cross-shard messages at termination"
        );
    }

    /// Assembles the [`RunResult`] — deterministically: every vector is
    /// walked in global index order, every scalar is a sum, and the one
    /// order-sensitive-looking piece (the spine counter replicas) is a
    /// `SwitchCounters::merge`, which is field-wise addition.
    fn merge(mut self) -> (RunResult, Option<Vec<(u64, u64)>>) {
        let shards = &mut self.shards;
        let nshards = shards.len();
        let scenario = shards[0].scenario.clone();
        let racks = shards[0].racks;
        let n_clients = scenario.n_clients;
        let n_servers = scenario.servers.len();
        for sh in shards.iter() {
            debug_assert_eq!(
                sh.payloads.live(),
                0,
                "shard {} leaked {} payload slots",
                sh.id,
                sh.payloads.live()
            );
            debug_assert!(
                sh.q.is_empty(),
                "shard {} stopped with queued events",
                sh.id
            );
        }

        let mut latency = LatencyHistogram::new();
        let mut generated = 0u64;
        let mut redundant = 0u64;
        let mut clone_wins = 0u64;
        for cid in 0..n_clients {
            let owner = shards[0].client_leaf[cid] % nshards;
            let c = shards[owner].clients[cid].as_ref().expect("client owner");
            latency.merge(c.latencies());
            generated += c.stats().generated;
            redundant += c.stats().redundant;
            clone_wins += c.stats().clone_wins;
        }

        // Per-switch windows in fabric index order (leaves, then the
        // spine): each leaf's from its owner, the spine's as the merge of
        // every shard's replica delta.
        let mut per_switch: Vec<SwitchCounters> = Vec::with_capacity(racks + 1);
        for r in 0..racks {
            let sh = &shards[r % nshards];
            let e = sh.engines[r].as_ref().expect("leaf owner");
            per_switch.push(e.counters().since(&sh.switch_counters_at_warmup[r]));
        }
        if racks > 1 {
            let mut spine = SwitchCounters::default();
            for sh in shards.iter() {
                let replica = sh.spine.as_ref().expect("spine replica");
                spine.merge(&replica.counters().since(&sh.spine_counters_at_warmup));
            }
            per_switch.push(spine);
        }
        let switch: SwitchCounters = per_switch.iter().sum();

        let mut clone_drops = 0;
        let mut idle_reports = 0;
        let mut responses = 0;
        let mut per_server_served = Vec::with_capacity(n_servers);
        for idx in 0..n_servers {
            let sh = &shards[shards[0].server_leaf[idx] % nshards];
            let st = sh.servers[idx].as_ref().expect("server owner").stats();
            let b = sh.server_stats_at_warmup[idx];
            clone_drops += st.clones_dropped - b.clones_dropped;
            idle_reports += st.idle_reports - b.idle_reports;
            responses += st.responses - b.responses;
            per_server_served.push(st.served - b.served);
        }

        let mut throughput = shards[0].throughput.clone();
        for sh in &shards[1..] {
            throughput.merge(&sh.throughput);
        }
        let completed: u64 = shards.iter().map(|s| s.completed_in_window).sum();
        let packets_lost: u64 = shards.iter().map(|s| s.packets_lost).sum();
        let events: u64 = shards.iter().map(|s| s.events_scheduled).sum();
        let measure_secs = scenario.measure_ns as f64 / 1e9;

        let trace = shards[0].trace.is_some().then(|| {
            let mut t: Vec<(u64, u64)> = shards
                .iter_mut()
                .flat_map(|s| s.trace.take().expect("traced shard"))
                .collect();
            if nshards > 1 {
                // A serial trace is already in execution order; a merged
                // one is sorted into the global key order, with the
                // broadcast control events (one identically-keyed replica
                // per shard) collapsed.
                t.sort_unstable();
                t.dedup();
            }
            t
        });

        let result = RunResult {
            scheme: scenario.scheme.label(),
            workload: scenario.workload.label(),
            offered_rps: scenario.offered_rps,
            achieved_rps: completed as f64 / measure_secs,
            latency,
            generated,
            completed,
            client_redundant: redundant,
            client_clone_wins: clone_wins,
            switch,
            server_clone_drops: clone_drops,
            server_idle_reports: idle_reports,
            server_responses: responses,
            throughput_series: throughput,
            packets_lost,
            per_server_served,
            per_switch,
            events,
        };
        (result, trace)
    }
}
