//! The event queue: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.
//!
//! ## Implementation
//!
//! An implicit **4-ary min-heap** over a flat `Vec`, specialised for
//! `(SimTime, seq)` keys packed into one `u128` (`time << 64 | seq`).
//! Compared to the previous `BinaryHeap<Entry>`:
//!
//! * the packed key makes every comparison a single `u128` compare
//!   instead of a two-field `Ord` chain;
//! * arity 4 halves the tree depth, so a pop touches fewer cache lines —
//!   the dominant cost once events are small (see `netclone-cluster`'s
//!   interned events).
//!
//! Because `seq` increments on every push, keys are unique and the pop
//! order is a **total** order identical to the old implementation's
//! `(time, seq)` tie-breaking — bit-for-bit, which the seed-pinned
//! regression tests rely on. `tests/prop_queue.rs` checks this against a
//! reference `BinaryHeap` implementation under arbitrary interleaved
//! schedule/pop workloads.

use crate::SimTime;

/// Packs a `(time, seq)` pair into one totally-ordered key. `seq` is
/// unique per push, so keys never collide and FIFO tie-breaking is exact.
#[inline]
const fn key(at: SimTime, seq: u64) -> u128 {
    ((at.as_ns() as u128) << 64) | seq as u128
}

/// Tie-break half of a packed key.
#[inline]
const fn key_tie(k: u128) -> u64 {
    k as u64
}

/// Time half of a packed key.
#[inline]
const fn key_time(k: u128) -> SimTime {
    SimTime::from_ns((k >> 64) as u64)
}

/// Heap arity. 4 is the sweet spot for shallow trees with cheap
/// min-of-children scans on small events.
const D: usize = 4;

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// which makes whole-simulation runs reproducible for a fixed seed — a
/// property the reproduction leans on (fixed seeds per figure).
pub struct EventQueue<E> {
    /// The implicit d-ary heap: `heap[0]` is the earliest event.
    heap: Vec<(u128, E)>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (time zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulation bug; this panics (in both
    /// debug and release) rather than silently reordering history.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push((key(at, seq), ev));
        self.sift_up(self.heap.len() - 1);
    }

    /// Schedules `ev` at `now() + delay_ns`.
    #[inline]
    pub fn schedule_in(&mut self, delay_ns: u64, ev: E) {
        self.schedule(self.now + delay_ns, ev);
    }

    /// Schedules `ev` at `at` with a caller-supplied tie-break key.
    ///
    /// The pop order is `(at, tie)` lexicographic. Sharded simulations use
    /// this to impose a *machine-independent* total order: the caller packs
    /// `(source domain, per-domain sequence)` into `tie` (see
    /// [`crate::sync::tie_key`]), so two queues on different shards agree
    /// on the order of any pair of events without ever communicating.
    /// Callers must keep `(at, tie)` pairs unique; equal keys would fall
    /// back to unspecified (heap) ordering.
    ///
    /// Like [`schedule`](Self::schedule), panics on scheduling in the past.
    #[inline]
    pub fn schedule_keyed(&mut self, at: SimTime, tie: u64, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        self.scheduled_total += 1;
        self.heap.push((key(at, tie), ev));
        self.sift_up(self.heap.len() - 1);
    }

    /// Pops the earliest event along with its tie-break key (the low 64
    /// bits of the packed key — the push sequence for
    /// [`schedule`](Self::schedule), the caller's `tie` for
    /// [`schedule_keyed`](Self::schedule_keyed)).
    #[inline]
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let last = self.heap.pop()?;
        let (k, ev) = if self.heap.is_empty() {
            last
        } else {
            let root = std::mem::replace(&mut self.heap[0], last);
            self.sift_down(0);
            root
        };
        let at = key_time(k);
        debug_assert!(at >= self.now, "heap returned an out-of-order event");
        self.now = at;
        Some((at, key_tie(k), ev))
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let last = self.heap.pop()?;
        let (k, ev) = if self.heap.is_empty() {
            last
        } else {
            let root = std::mem::replace(&mut self.heap[0], last);
            self.sift_down(0);
            root
        };
        let at = key_time(k);
        debug_assert!(at >= self.now, "heap returned an out-of-order event");
        self.now = at;
        Some((at, ev))
    }

    /// Timestamp of the next event without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&(k, _)| key_time(k))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run diagnostics and the
    /// events/sec throughput report).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Restores the heap invariant upward from `pos` (a freshly pushed
    /// leaf).
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / D;
            if self.heap[parent].0 <= self.heap[pos].0 {
                break;
            }
            self.heap.swap(parent, pos);
            pos = parent;
        }
    }

    /// Restores the heap invariant downward from `pos` (a freshly
    /// replaced root).
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        loop {
            let first_child = pos * D + 1;
            if first_child >= len {
                break;
            }
            // The smallest key among up to D children.
            let mut min = first_child;
            let end = (first_child + D).min(len);
            for c in first_child + 1..end {
                if self.heap[c].0 < self.heap[min].0 {
                    min = c;
                }
            }
            if self.heap[pos].0 <= self.heap[min].0 {
                break;
            }
            self.heap.swap(pos, min);
            pos = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime::from_ns(5), label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(2), ());
        q.schedule(SimTime::from_us(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(1));
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(2));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(1), 1u32);
        q.pop();
        q.schedule_in(500, 2u32);
        let (at, ev) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_ns(1_500));
        assert_eq!(ev, 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
    }

    #[test]
    fn keyed_schedule_orders_by_tie_not_push_order() {
        let mut q = EventQueue::new();
        // Push in descending tie order at one instant: pops must follow
        // the ties, not insertion.
        q.schedule_keyed(SimTime::from_ns(5), 300, "c");
        q.schedule_keyed(SimTime::from_ns(5), 100, "a");
        q.schedule_keyed(SimTime::from_ns(5), 200, "b");
        q.schedule_keyed(SimTime::from_ns(1), 999, "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "a", "b", "c"]);
    }

    #[test]
    fn pop_keyed_returns_the_tie() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_ns(7), 42, ());
        q.schedule(SimTime::from_ns(9), ());
        assert_eq!(q.scheduled_total(), 2);
        let (at, tie, _) = q.pop_keyed().unwrap();
        assert_eq!((at.as_ns(), tie), (7, 42));
        // `schedule` ties are the internal push sequence (one `schedule`
        // so far → seq 0).
        let (at, tie, _) = q.pop_keyed().unwrap();
        assert_eq!((at.as_ns(), tie), (9, 0));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn keyed_scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_us(10), 0, ());
        q.pop();
        q.schedule_keyed(SimTime::from_us(5), 1, ());
    }

    /// Exercises sift-down through several heap levels with a mix of
    /// ties and distinct keys — deeper than the d-ary branching factor.
    #[test]
    fn deep_heaps_stay_totally_ordered() {
        let mut q = EventQueue::new();
        // Interleave two phases so the heap repeatedly grows and shrinks.
        let mut popped = Vec::new();
        for round in 0u64..8 {
            for i in 0..64u64 {
                // Many colliding timestamps (relative to the advancing
                // clock) to stress FIFO tie-breaking.
                q.schedule(q.now() + (i * 7919 + round) % 97, (round, i));
            }
            for _ in 0..32 {
                popped.push(q.pop().unwrap());
            }
        }
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        assert_eq!(popped.len(), 8 * 64);
        // Chronological, and FIFO within each timestamp: the payload
        // `(round, i)` is the push order, so equal-time neighbours must
        // pop in ascending lexicographic payload order.
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {w:?}");
            }
        }
    }
}
