//! The event queue: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` breaks ties in insertion order for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same instant pop in the order they were pushed,
/// which makes whole-simulation runs reproducible for a fixed seed — a
/// property the reproduction leans on (fixed seeds per figure).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (time zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulation bug; this panics (in both
    /// debug and release) rather than silently reordering history.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Schedules `ev` at `now() + delay_ns`.
    pub fn schedule_in(&mut self, delay_ns: u64, ev: E) {
        self.schedule(self.now + delay_ns, ev);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "heap returned an out-of-order event");
        self.now = e.at;
        Some((e.at, e.ev))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime::from_ns(5), label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(2), ());
        q.schedule(SimTime::from_us(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(1));
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(2));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(1), 1u32);
        q.pop();
        q.schedule_in(500, 2u32);
        let (at, ev) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_ns(1_500));
        assert_eq!(ev, 2);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
    }
}
