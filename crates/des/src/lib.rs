//! # netclone-des
//!
//! A small, deterministic discrete-event simulation kernel.
//!
//! The NetClone evaluation (paper §5) is a queueing study: open-loop clients,
//! a switch, and multi-worker servers exchanging microsecond-scale RPCs.
//! This crate provides the three primitives every such study needs:
//!
//! * [`SimTime`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking (two events at the same instant pop in
//!   push order, so runs are bit-for-bit reproducible),
//! * [`SeedFactory`] — a SplitMix64-based fan-out of independent RNG seeds,
//!   one stream per simulated entity, so adding an entity never perturbs the
//!   random draws of the others.
//!
//! For sharded (multi-queue) simulations, [`sync`] adds the conservative
//! lookahead pieces: per-domain tie-break keys that keep the merged
//! execution order machine-independent, a horizon board, and a reusable
//! spin barrier.
//!
//! Design follows the event-driven style of smoltcp: no global registries,
//! no trait-object callback soup — the simulation owns its entities and
//! dispatches popped events itself.

pub mod queue;
pub mod rng;
pub mod sync;
pub mod time;

pub use queue::EventQueue;
pub use rng::SeedFactory;
pub use sync::{HorizonBoard, SpinBarrier};
pub use time::SimTime;
