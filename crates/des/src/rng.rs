//! Deterministic seed fan-out for per-entity RNG streams.
//!
//! Every simulated entity (each client, each server, each workload
//! generator) gets its own seeded RNG derived from the run's master seed.
//! This keeps entities statistically independent *and* keeps a run
//! reproducible when entities are added or reordered: entity `k`'s stream
//! depends only on `(master_seed, label, k)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step — a tiny, well-mixed generator used only to derive
/// seeds, never to produce simulation randomness directly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible RNG seeds from one master seed.
#[derive(Clone, Copy, Debug)]
pub struct SeedFactory {
    master: u64,
}

impl SeedFactory {
    /// Creates a factory for the given master seed.
    pub fn new(master: u64) -> Self {
        SeedFactory { master }
    }

    /// Derives the seed for stream `(label, index)`.
    ///
    /// `label` namespaces entity kinds ("client", "server", …) so that e.g.
    /// client 0 and server 0 never share a stream.
    pub fn seed_for(&self, label: &str, index: u64) -> u64 {
        let mut state = self.master;
        for &b in label.as_bytes() {
            state ^= splitmix64(&mut state) ^ (b as u64);
        }
        state ^= splitmix64(&mut state) ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut state)
    }

    /// Builds a seeded [`StdRng`] for stream `(label, index)`.
    pub fn rng_for(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        let f = SeedFactory::new(42);
        assert_eq!(f.seed_for("client", 0), f.seed_for("client", 0));
    }

    #[test]
    fn different_labels_differ() {
        let f = SeedFactory::new(42);
        assert_ne!(f.seed_for("client", 0), f.seed_for("server", 0));
    }

    #[test]
    fn different_indices_differ() {
        let f = SeedFactory::new(42);
        let seeds: Vec<u64> = (0..64).map(|i| f.seed_for("server", i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision within a label");
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedFactory::new(1).seed_for("x", 0),
            SeedFactory::new(2).seed_for("x", 0)
        );
    }

    #[test]
    fn rngs_reproduce_streams() {
        let f = SeedFactory::new(7);
        let mut a = f.rng_for("client", 3);
        let mut b = f.rng_for("client", 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }
}
