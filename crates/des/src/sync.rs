//! Conservative synchronization primitives for sharded simulations.
//!
//! A sharded discrete-event simulation partitions the model into domains
//! (here: racks), gives each shard a private [`EventQueue`](crate::EventQueue), and lets the
//! shards run concurrently under the classic *conservative lookahead*
//! rule: if every cross-shard interaction takes at least `lookahead_ns`
//! of simulated time to arrive, each shard may safely execute every event
//! strictly before
//!
//! ```text
//! window_end = min(all shards' next-event times) + lookahead_ns
//! ```
//!
//! because no message sent by a peer inside the window can land inside
//! it. Shards advance in rounds: publish horizons → barrier → execute the
//! window (buffering outbound messages) → barrier → deliver inbound
//! messages, repeat. Two barriers per round; the protocol itself lives in
//! the simulation crate, this module provides the pieces:
//!
//! * [`tie_key`] — the per-domain tie-break key that makes the *merged*
//!   execution order a machine-independent total order (see below);
//! * [`HorizonBoard`] — the shared next-event-time slots;
//! * [`SpinBarrier`] — a generation-counting barrier that spins briefly
//!   and then yields, so oversubscribed hosts (fewer cores than shards)
//!   degrade gracefully instead of livelocking.
//!
//! ## Why `(time, domain, seq)` keys keep runs bit-identical
//!
//! A single global push-sequence tie-break (what [`EventQueue::schedule`](crate::EventQueue::schedule)
//! does) is inherently serial: the sequence a parallel run would assign
//! depends on the interleaving. Instead, every event is keyed by its
//! *source domain* and a *per-domain* sequence number, packed by
//! [`tie_key`]. Domains execute their own events in key order and stamp
//! outbound events deterministically, so the key every event carries — and
//! therefore the order any queue pops overlapping events — is independent
//! of how many shards executed the run. `netclone-cluster` asserts the
//! resulting serial/sharded bit-identity over random topologies.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::SimTime;

/// Sequence numbers occupy the low 48 bits of a tie key; the source
/// domain sits above them. 2^48 events per domain is far beyond any run
/// this simulator performs (a billion-event run uses 0.0004% of it).
pub const TIE_SEQ_BITS: u32 = 48;

/// Packs `(source domain, per-domain sequence)` into one tie-break key
/// for [`EventQueue::schedule_keyed`](crate::EventQueue::schedule_keyed).
/// Ordering is `(src, seq)` lexicographic; keys from different domains
/// never collide.
#[inline]
pub const fn tie_key(src: u16, seq: u64) -> u64 {
    debug_assert!(seq < (1u64 << TIE_SEQ_BITS), "per-domain sequence overflow");
    ((src as u64) << TIE_SEQ_BITS) | seq
}

/// Source-domain half of a tie key (diagnostics).
#[inline]
pub const fn tie_src(tie: u64) -> u16 {
    (tie >> TIE_SEQ_BITS) as u16
}

/// One shared next-event-time slot per shard. A shard *publishes* its
/// horizon (the timestamp of its earliest pending event, or
/// [`HorizonBoard::IDLE`] when drained) before a barrier; after the
/// barrier every shard reads the same minimum and derives the same
/// window end.
pub struct HorizonBoard {
    slots: Vec<AtomicU64>,
}

impl HorizonBoard {
    /// The published value of a drained shard. An all-idle board is the
    /// termination condition.
    pub const IDLE: u64 = u64::MAX;

    /// A board for `n` shards, all idle.
    pub fn new(n: usize) -> Self {
        HorizonBoard {
            slots: (0..n).map(|_| AtomicU64::new(Self::IDLE)).collect(),
        }
    }

    /// Publishes shard `k`'s next event time (`None` = drained).
    #[inline]
    pub fn publish(&self, k: usize, next: Option<SimTime>) {
        self.slots[k].store(next.map_or(Self::IDLE, |t| t.as_ns()), Ordering::Release);
    }

    /// The minimum published horizon ([`Self::IDLE`] when every shard is
    /// drained). Call only between the publish barrier and the next
    /// publish.
    #[inline]
    pub fn min(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(Self::IDLE)
    }
}

/// The end of the current conservative window: every shard may execute
/// events with `time < window_end`. `None` means all shards are drained
/// and the round loop should terminate.
#[inline]
pub fn window_end(min_horizon_ns: u64, lookahead_ns: u64) -> Option<u64> {
    (min_horizon_ns != HorizonBoard::IDLE).then(|| min_horizon_ns.saturating_add(lookahead_ns))
}

/// A reusable generation-counting barrier.
///
/// Unlike `std::sync::Barrier`, waiting spins (for the common case of one
/// shard per core and sub-microsecond rounds) and falls back to
/// `yield_now` after a few iterations, so shard counts above the core
/// count — the 1-core CI case included — still make forward progress.
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a barrier needs at least one participant");
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `n` participants have called `wait` for this
    /// generation. The last arrival resets the count and releases the
    /// rest; the barrier is immediately reusable.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Reset before opening the gate: peers re-entering for the
            // next generation must start from zero.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.wrapping_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_keys_order_by_domain_then_sequence() {
        assert!(tie_key(0, 5) < tie_key(0, 6));
        assert!(tie_key(0, (1 << TIE_SEQ_BITS) - 1) < tie_key(1, 0));
        assert!(tie_key(1, 7) < tie_key(2, 0));
        assert_eq!(tie_src(tie_key(3, 99)), 3);
        assert_eq!(tie_key(0, 42), 42, "domain 0 keys are the raw sequence");
    }

    #[test]
    fn horizon_board_minimum_and_idle() {
        let b = HorizonBoard::new(3);
        assert_eq!(b.min(), HorizonBoard::IDLE);
        b.publish(0, Some(SimTime::from_ns(500)));
        b.publish(1, None);
        b.publish(2, Some(SimTime::from_ns(300)));
        assert_eq!(b.min(), 300);
        assert_eq!(window_end(b.min(), 200), Some(500));
        b.publish(2, None);
        b.publish(0, None);
        assert_eq!(b.min(), HorizonBoard::IDLE);
        assert_eq!(window_end(b.min(), 200), None);
    }

    #[test]
    fn barrier_synchronises_counters_across_rounds() {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 4;
        const ROUNDS: usize = 100;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Between the two barriers the count is exact: no
                        // thread can run ahead into the next round.
                        let seen = counter.load(Ordering::Relaxed);
                        assert_eq!(seen as usize, (round + 1) * THREADS);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed) as usize, THREADS * ROUNDS);
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }
}
