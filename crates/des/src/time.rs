//! Simulated time, at nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in nanoseconds from the start of the
/// run. A `u64` covers ~584 simulated years, far beyond any experiment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the start of the run, as a float (for reporting).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference (`self - earlier`), in nanoseconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advances by `ns` nanoseconds.
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub for SimTime {
    type Output = u64;
    /// Difference in nanoseconds. Panics in debug builds on underflow, like
    /// integer subtraction; use [`SimTime::since`] for saturating semantics.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(25), SimTime::from_ns(25_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_us(10) + 500;
        assert_eq!(t.as_ns(), 10_500);
        assert_eq!(t - SimTime::from_us(10), 500);
        assert_eq!(SimTime::from_us(1).since(SimTime::from_us(2)), 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ns(5).to_string(), "5ns");
        assert_eq!(SimTime::from_us(25).to_string(), "25.000us");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_us(1) < SimTime::from_us(2));
        assert!(SimTime::ZERO < SimTime::from_ns(1));
    }
}
