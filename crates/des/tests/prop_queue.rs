//! Property tests for the event queue: chronological pops, stable ties,
//! and clock monotonicity under arbitrary schedules.

use netclone_des::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping returns events in non-decreasing time order regardless of
    /// push order.
    #[test]
    fn pops_are_chronological(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Events at equal times pop in push order (stable ties).
    #[test]
    fn equal_times_are_fifo(n in 1usize..100, t in 0u64..1_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_ns(t), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Interleaving schedule_in with pops keeps the clock monotone and
    /// drains everything exactly once.
    #[test]
    fn interleaved_scheduling_drains_once(
        script in proptest::collection::vec((0u64..10_000, 0u8..3), 1..100)
    ) {
        let mut q = EventQueue::new();
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for &(delay, extra) in &script {
            q.schedule_in(delay, ());
            pushed += 1;
            for _ in 0..extra {
                if q.pop().is_some() {
                    popped += 1;
                }
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(pushed, popped);
        prop_assert_eq!(q.scheduled_total(), pushed);
    }
}
