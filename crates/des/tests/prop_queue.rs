//! Property tests for the event queue: chronological pops, stable ties,
//! clock monotonicity under arbitrary schedules, and — since the queue
//! became an indexed 4-ary heap — exact pop-sequence equivalence against
//! a reference `BinaryHeap` implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use netclone_des::{EventQueue, SimTime};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The reference implementation: the queue as it was before the 4-ary
// heap, kept verbatim as the ordering oracle — a max-`BinaryHeap` of
// `(time, seq)` entries with inverted comparison and FIFO tie-breaking
// on the push sequence number.
// ---------------------------------------------------------------------

struct RefEntry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for RefEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for RefEntry<E> {}
impl<E> PartialOrd for RefEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for RefEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ReferenceQueue<E> {
    heap: BinaryHeap<RefEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> ReferenceQueue<E> {
    fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn schedule(&mut self, at: SimTime, ev: E) {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { at, seq, ev });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.seq, e.ev))
    }
}

/// One step of the interleaved workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Schedule an event `delay` ns after the current clock. Small delays
    /// (including 0) force timestamp collisions, the FIFO-critical case.
    Schedule(u64),
    /// Pop the earliest event (a no-op on an empty queue).
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..50).prop_map(Op::Schedule),
        (0u64..100_000).prop_map(Op::Schedule),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    /// The seed-pinned regression suites require the new queue to pop the
    /// *exact* `(time, seq)` sequence the old `BinaryHeap` popped, for
    /// any interleaving of schedules and pops.
    #[test]
    fn indexed_heap_matches_binary_heap_reference(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut q = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        // Payload = push index = the reference's seq, so the assertion
        // catches any permutation, even among colliding timestamps.
        let mut pushed = 0u64;
        for op in ops {
            match op {
                Op::Schedule(delay) => {
                    // Pops are asserted identical below, so both clocks
                    // agree and relative delays yield identical absolute
                    // timestamps.
                    let at = q.now() + delay;
                    q.schedule(at, pushed);
                    reference.schedule(at, pushed);
                    pushed += 1;
                }
                Op::Pop => match (q.pop(), reference.pop()) {
                    (None, None) => {}
                    (Some((at, ev)), Some((r_at, r_seq, r_ev))) => {
                        prop_assert_eq!(at, r_at, "pop time diverged");
                        prop_assert_eq!(ev, r_ev, "pop order diverged");
                        prop_assert_eq!(ev, r_seq);
                        prop_assert_eq!(q.now(), reference.now);
                    }
                    (got, want) => prop_assert!(
                        false,
                        "emptiness diverged: {:?} vs reference {:?}",
                        got,
                        want.map(|w| (w.0, w.1))
                    ),
                },
            }
        }
        // Drain both: the tails must agree too.
        while let Some((at, ev)) = q.pop() {
            let (r_at, _, r_ev) = reference.pop().expect("reference drained early");
            prop_assert_eq!(at, r_at);
            prop_assert_eq!(ev, r_ev);
        }
        prop_assert!(reference.pop().is_none(), "new queue drained early");
    }
}

proptest! {
    /// Popping returns events in non-decreasing time order regardless of
    /// push order.
    #[test]
    fn pops_are_chronological(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Events at equal times pop in push order (stable ties).
    #[test]
    fn equal_times_are_fifo(n in 1usize..100, t in 0u64..1_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_ns(t), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Interleaving schedule_in with pops keeps the clock monotone and
    /// drains everything exactly once.
    #[test]
    fn interleaved_scheduling_drains_once(
        script in proptest::collection::vec((0u64..10_000, 0u8..3), 1..100)
    ) {
        let mut q = EventQueue::new();
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for &(delay, extra) in &script {
            q.schedule_in(delay, ());
            pushed += 1;
            for _ in 0..extra {
                if q.pop().is_some() {
                    popped += 1;
                }
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(pushed, popped);
        prop_assert_eq!(q.scheduled_total(), pushed);
    }
}
