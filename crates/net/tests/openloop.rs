//! Open-loop load generation against the real-socket testbed.

use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_net::{OpenLoopClient, OpenLoopSpec, Testbed, WorkExecutor};
use netclone_proto::{Ipv4, RpcOp};

#[test]
fn open_loop_sustains_a_modest_rate() {
    let tb =
        Testbed::spawn(NetCloneConfig::default(), 3, 2, WorkExecutor::Synthetic).expect("testbed");
    let handle = tb.switch_handle();
    let client = OpenLoopClient::bind(0, tb.switch_addr()).expect("bind");
    handle
        .register_client(0, Ipv4::client(0), client.addr().unwrap())
        .expect("register");

    let report = client
        .run(OpenLoopSpec {
            rate_rps: 2_000.0,
            duration: Duration::from_millis(400),
            op: RpcOp::Echo { class_ns: 30_000 },
            drain: Duration::from_millis(150),
            request_timeout: Duration::from_millis(100),
            num_groups: handle.num_groups(),
            num_filter_tables: 2,
            seed: 11,
            workers: 1,
            retry: None,
            faults: None,
            crash_worker: None,
        })
        .expect("run");

    // ~800 requests expected at 2 kRPS over 400 ms.
    assert!(
        report.sent > 500 && report.sent < 1_200,
        "sent {} — pacing is off",
        report.sent
    );
    assert!(
        report.completion_rate() > 0.95,
        "completion rate {} (completed {} of {})",
        report.completion_rate(),
        report.completed,
        report.sent
    );
    assert_eq!(report.redundant, 0, "filtering must hold under open loop");
    assert_eq!(
        report.sent,
        report.completed + report.lost,
        "every request is accounted for exactly once"
    );
    assert!(
        report.clone_wins <= report.completed,
        "clone wins are a subset of completions"
    );
    let p50 = report.latencies.quantile(0.5);
    assert!(
        p50 > 30_000 && p50 < 5_000_000,
        "p50 {} ns outside plausible loopback range",
        p50
    );
    // The switch cloned under light open-loop load.
    let c = handle.counters();
    assert!(c.cloned > 0);
    tb.shutdown();
}
