//! The soft switch's pcap debug tap: captures must be valid libpcap files
//! containing the forwarded IPv4/UDP/NetClone packets.

use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_net::{ServerHandle, SoftSwitch, UdpClient, UdpServerConfig, WorkExecutor};
use netclone_proto::{Ipv4, RpcOp};

#[test]
fn tap_records_forwarded_packets() {
    let dir = std::env::temp_dir().join("netclone-tap-test");
    std::fs::create_dir_all(&dir).unwrap();
    let pcap_path = dir.join("switch.pcap");

    let switch = SoftSwitch::spawn_with_tap(NetCloneConfig::default(), &pcap_path).expect("switch");
    let handle = switch.handle();
    let mut servers = Vec::new();
    for sid in 0..2u16 {
        let server = ServerHandle::spawn(UdpServerConfig {
            sid,
            vip: Ipv4::server(sid),
            workers: 2,
            executor: WorkExecutor::Synthetic,
            switch_addr: switch.addr(),
            faults: None,
            crash_worker: None,
        })
        .expect("server");
        handle
            .register_server(sid, Ipv4::server(sid), server.addr())
            .expect("register");
        servers.push(server);
    }
    let mut client = UdpClient::bind(0, switch.addr(), handle.num_groups(), 2, 9).expect("client");
    handle
        .register_client(0, client.vip(), client.addr().unwrap())
        .expect("register client");
    std::thread::sleep(Duration::from_millis(5));

    let calls = 10u64;
    for _ in 0..calls {
        client
            .call(RpcOp::Echo { class_ns: 20_000 }, Duration::from_secs(2))
            .expect("call");
    }
    std::thread::sleep(Duration::from_millis(50));
    for s in servers {
        s.shutdown();
    }
    switch.shutdown(); // flushes the tap

    let raw = std::fs::read(&pcap_path).expect("pcap written");
    assert_eq!(&raw[..4], &0xa1b2_c3d4u32.to_le_bytes(), "pcap magic");
    assert_eq!(
        u32::from_le_bytes(raw[20..24].try_into().unwrap()),
        101,
        "LINKTYPE_RAW"
    );
    // Each call forwards ≥ 2 packets (request + response; clones add
    // more): expect well over `2 × calls` records. Walk the records and
    // sanity-check framing.
    let mut off = 24;
    let mut records = 0;
    while off + 16 <= raw.len() {
        let incl = u32::from_le_bytes(raw[off + 8..off + 12].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(raw[off + 12..off + 16].try_into().unwrap()) as usize;
        assert_eq!(incl, orig);
        assert_eq!(raw[off + 16] >> 4, 4, "record {records} is not IPv4");
        off += 16 + incl;
        records += 1;
    }
    assert_eq!(off, raw.len(), "trailing garbage in capture");
    assert!(
        records as u64 >= 2 * calls,
        "expected at least {} records, found {records}",
        2 * calls
    );
    let _ = std::fs::remove_dir_all(&dir);
}
