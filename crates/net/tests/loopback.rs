#![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]

//! End-to-end tests of the real-socket runtime on loopback: the genuine
//! NetClone program forwarding real datagrams between real threads.

use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_net::{Testbed, WorkExecutor};
use netclone_proto::{KvKey, RpcOp};

const TIMEOUT: Duration = Duration::from_secs(2);

#[test]
fn echo_calls_complete_and_slower_responses_are_filtered() {
    let mut tb =
        Testbed::spawn(NetCloneConfig::default(), 3, 2, WorkExecutor::Synthetic).expect("testbed");
    let mut client = tb.client(1).expect("client");
    let calls = 40;
    for _ in 0..calls {
        let reply = client
            .call(RpcOp::Echo { class_ns: 100_000 }, TIMEOUT)
            .expect("call");
        assert!(reply.latency >= Duration::from_micros(100));
        assert!(reply.sid < 3);
    }
    // Closed-loop single-outstanding traffic leaves every queue empty, so
    // every request should clone, and the filter must absorb exactly the
    // slower responses.
    let c = tb.switch_handle().counters();
    assert_eq!(c.requests, calls);
    assert!(
        c.cloned >= calls * 9 / 10,
        "closed-loop requests should nearly always clone: {c:?}"
    );
    // Allow stragglers still in flight, then confirm no redundancy leaked.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        client.drain_late_responses(),
        0,
        "filter must block the slower copies"
    );
    assert_eq!(client.redundant(), 0);
    assert_eq!(client.completed(), calls);
    tb.shutdown();
}

#[test]
fn disabling_the_filter_leaks_redundant_responses() {
    let mut cfg = NetCloneConfig::default();
    cfg.filtering_enabled = false;
    let mut tb = Testbed::spawn(cfg, 3, 2, WorkExecutor::Synthetic).expect("testbed");
    let mut client = tb.client(2).expect("client");
    for _ in 0..25 {
        client
            .call(RpcOp::Echo { class_ns: 50_000 }, TIMEOUT)
            .expect("call");
    }
    std::thread::sleep(Duration::from_millis(80));
    client.drain_late_responses();
    assert!(
        client.redundant() > 0,
        "without filtering the client must see duplicate responses"
    );
    tb.shutdown();
}

#[test]
fn kv_store_round_trips_values_through_the_fabric() {
    let mut tb = Testbed::spawn(NetCloneConfig::default(), 2, 2, WorkExecutor::kv(1_000, 64))
        .expect("testbed");
    let mut client = tb.client(3).expect("client");

    // GET returns the store's deterministic value (object index prefix).
    let reply = client
        .call(
            RpcOp::Get {
                key: KvKey::from_index(42),
            },
            TIMEOUT,
        )
        .expect("get");
    assert_eq!(reply.value.len(), 64);
    assert_eq!(&reply.value[..8], &42u64.to_be_bytes());

    // SCAN concatenates 10 objects.
    let reply = client
        .call(
            RpcOp::Scan {
                key: KvKey::from_index(0),
                count: 10,
            },
            TIMEOUT,
        )
        .expect("scan");
    assert_eq!(reply.value.len(), 640);

    // PUT is acknowledged and never cloned (§5.5).
    let before = tb.switch_handle().counters().cloned;
    let reply = client
        .call(
            RpcOp::Put {
                key: KvKey::from_index(7),
                value_len: 64,
            },
            TIMEOUT,
        )
        .expect("put");
    assert_eq!(reply.value, b"STORED");
    let after = tb.switch_handle().counters().cloned;
    assert_eq!(before, after, "writes must not be cloned");
    tb.shutdown();
}

#[test]
fn server_failure_is_handled_by_the_control_plane() {
    let mut tb =
        Testbed::spawn(NetCloneConfig::default(), 3, 2, WorkExecutor::Synthetic).expect("testbed");
    let handle = tb.switch_handle();
    assert_eq!(handle.num_groups(), 6);
    handle.remove_server(2).expect("remove");
    assert_eq!(handle.num_groups(), 2, "groups rebuilt over 2 servers");
    // Traffic still completes against the surviving pair. (The client
    // draws groups from the updated count, §3.6.)
    let mut client = tb.client(4).expect("client");
    for _ in 0..10 {
        let reply = client
            .call(RpcOp::Echo { class_ns: 20_000 }, TIMEOUT)
            .expect("call survives failure");
        assert!(reply.sid < 2, "failed server must not answer");
    }
    tb.shutdown();
}

#[test]
fn switch_soft_state_reset_is_harmless() {
    let mut tb =
        Testbed::spawn(NetCloneConfig::default(), 2, 2, WorkExecutor::Synthetic).expect("testbed");
    let mut client = tb.client(5).expect("client");
    client
        .call(RpcOp::Echo { class_ns: 20_000 }, TIMEOUT)
        .expect("before reset");
    // §3.6 argues a restarted sequence number is harmless because "most
    // requests with earlier sequence numbers have already been completed".
    // That caveat is real: an in-flight pre-reset response can collide with
    // a reused post-reset request ID and make the filter absorb a live
    // response (observed in this very test without the drain). Model the
    // paper's assumption: let in-flight traffic drain before the reset.
    std::thread::sleep(Duration::from_millis(50));
    client.drain_late_responses();
    tb.switch_handle().reset_soft_state();
    for i in 0..5 {
        if let Err(e) = client.call(RpcOp::Echo { class_ns: 20_000 }, TIMEOUT) {
            panic!("call {i} after reset failed: {e}");
        }
    }
    tb.shutdown();
}

#[test]
fn shutdown_joins_quickly() {
    let tb =
        Testbed::spawn(NetCloneConfig::default(), 2, 2, WorkExecutor::Synthetic).expect("testbed");
    let start = std::time::Instant::now();
    tb.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "graceful shutdown must not hang"
    );
}
