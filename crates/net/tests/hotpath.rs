//! Loopback smoke test of the steady-state hot-path contract: across a
//! full open-loop run — client workers, soft switch, and sharded servers
//! all in this process — the per-packet path performs **zero**
//! buffer-growth allocations and **zero** `set_read_timeout` syscalls,
//! as counted by the debug counters in `netclone_net::batch`.
//!
//! This file holds exactly one test on purpose: the counters are
//! process-wide, so a sibling test running `UdpClient` (which legally
//! arms deadline buckets) would pollute the deltas.

use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_net::{path_counters, OpenLoopSpec, Testbed, WorkExecutor};
use netclone_proto::RpcOp;

#[test]
fn open_loop_steady_state_is_alloc_and_timeout_syscall_free() {
    let mut tb =
        Testbed::spawn(NetCloneConfig::default(), 2, 2, WorkExecutor::Synthetic).expect("testbed");
    let handle = tb.switch_handle();
    let client = tb.open_loop_client(2).expect("open-loop client");

    let before = path_counters();
    let report = client
        .run(OpenLoopSpec {
            rate_rps: 2_000.0,
            duration: Duration::from_millis(250),
            op: RpcOp::Echo { class_ns: 20_000 },
            drain: Duration::from_millis(150),
            request_timeout: Duration::from_millis(100),
            num_groups: handle.num_groups(),
            num_filter_tables: 2,
            seed: 3,
            workers: 2,
            retry: None,
            faults: None,
            crash_worker: None,
        })
        .expect("open-loop run");
    let after = path_counters();

    assert!(report.completed > 0, "the run must actually move traffic");
    assert_eq!(
        after.buffer_grow_allocs - before.buffer_grow_allocs,
        0,
        "a hot-path buffer grew past its preallocation during the run"
    );
    assert_eq!(
        after.timeout_syscalls - before.timeout_syscalls,
        0,
        "the per-packet path issued set_read_timeout syscalls"
    );
    tb.shutdown();
}
