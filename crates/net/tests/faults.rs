//! Loopback smoke of the fault-injection path: open-loop runs over real
//! UDP sockets with a deterministic [`FaultShim`] between codec and
//! socket, client-side retries recovering the induced loss, and
//! supervised workers surviving injected crashes on both ends.

use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_hostcore::RetryPolicy;
use netclone_net::shim::{FaultDirection, FaultPlan, FaultWindow};
use netclone_net::{OpenLoopSpec, Testbed, WorkExecutor};
use netclone_proto::RpcOp;

/// A whole-run window injecting the given drop/duplicate probabilities
/// on the client's transmit side.
fn droppy_plan(seed: u64, drop_prob: f64, dup_prob: f64) -> FaultPlan {
    FaultPlan {
        seed,
        windows: vec![FaultWindow {
            from: Duration::ZERO,
            until: Duration::from_secs(3600),
            direction: FaultDirection::Tx,
            drop_prob,
            dup_prob,
            delay: Duration::ZERO,
        }],
    }
}

fn spec(handle: &netclone_net::SwitchHandle) -> OpenLoopSpec {
    OpenLoopSpec {
        rate_rps: 2_000.0,
        duration: Duration::from_millis(400),
        op: RpcOp::Echo { class_ns: 30_000 },
        drain: Duration::from_millis(300),
        request_timeout: Duration::from_millis(100),
        num_groups: handle.num_groups(),
        num_filter_tables: 2,
        seed: 7,
        workers: 2,
        retry: None,
        faults: None,
        crash_worker: None,
    }
}

#[test]
fn retries_recover_shim_drops_and_a_crashed_client_worker_restarts() {
    let mut tb =
        Testbed::spawn(NetCloneConfig::default(), 3, 2, WorkExecutor::Synthetic).expect("testbed");
    let handle = tb.switch_handle();
    let client = tb.open_loop_client(2).expect("open-loop client");

    let mut spec = spec(&handle);
    // Drop a fifth of the requests on the way out, duplicate a few (the
    // switch-side filter and the server-side clone-drop rule absorb
    // them), and retransmit what times out.
    spec.faults = Some(droppy_plan(99, 0.2, 0.05));
    spec.retry = Some(RetryPolicy::new(30_000_000));
    // Worker 0 panics mid-run; the supervisor restarts it with a fresh
    // core and a disjoint sequence space, and the run still completes.
    spec.crash_worker = Some((0, Duration::from_millis(150)));
    let report = client.run(spec).expect("open-loop run");

    assert!(report.completed > 0, "the faulted run moved no traffic");
    assert!(
        report.retried > 0,
        "a 20% drop rate with retries armed must retransmit something"
    );
    assert!(
        report.retry_wins > 0,
        "some retransmission must have recovered a completion"
    );
    assert!(
        report.restarts >= 1,
        "the injected crash was never supervised"
    );
    let errors = report.worker_errors();
    assert!(
        errors.iter().any(|(_, e)| e.contains("restarted")),
        "the crash was not reported: {errors:?}"
    );
    tb.shutdown();
}

#[test]
fn a_crashed_server_worker_restarts_without_losing_counters() {
    // Server 0's worker 1 panics once it has served 50 requests; its core
    // lives in the handle, so the counters survive and the supervisor
    // re-enters the loop.
    let mut tb = Testbed::spawn_faulty(
        NetCloneConfig::default(),
        3,
        2,
        WorkExecutor::Synthetic,
        Some(droppy_plan(5, 0.02, 0.0)),
        Some((1, 50)),
    )
    .expect("testbed");
    let handle = tb.switch_handle();
    let client = tb.open_loop_client(2).expect("open-loop client");

    let mut spec = spec(&handle);
    spec.retry = Some(RetryPolicy::new(30_000_000));
    let report = client.run(spec).expect("open-loop run");

    assert!(
        report.completion_rate() > 0.5,
        "completion rate {} — the fleet never recovered",
        report.completion_rate()
    );
    let crashed = &tb.servers()[0];
    assert!(
        crashed.restarts() >= 1,
        "the injected server crash was never supervised"
    );
    assert!(
        crashed.served() > 50,
        "server 0 served {} — it never came back after the crash",
        crashed.served()
    );
    tb.shutdown();
}
