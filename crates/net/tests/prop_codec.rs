//! Property tests for the datagram framing: any (metadata, op, value)
//! triple round-trips through `encode_packet`/`decode_packet`, and the
//! decoded `wire_bytes` always equals the datagram's true length —
//! every byte counted exactly once.

use netclone_net::codec::{decode_packet, encode_packet};
use netclone_proto::{
    CloneStatus, Ipv4, KvKey, MsgType, NetCloneHdr, PacketMeta, RpcOp, ServerState,
};
use proptest::prelude::*;

fn arb_msg_type() -> impl Strategy<Value = MsgType> {
    prop_oneof![Just(MsgType::Req), Just(MsgType::Resp)]
}

fn arb_clone_status() -> impl Strategy<Value = CloneStatus> {
    prop_oneof![
        Just(CloneStatus::NotCloned),
        Just(CloneStatus::ClonedOriginal),
        Just(CloneStatus::Clone),
    ]
}

prop_compose! {
    fn arb_header()(
        msg_type in arb_msg_type(),
        req_id in any::<u32>(),
        grp in any::<u16>(),
        sid in any::<u16>(),
        state in any::<u16>(),
        clo in arb_clone_status(),
        idx in any::<u8>(),
        switch_id in any::<u8>(),
        client_id in any::<u16>(),
        client_seq in any::<u32>(),
    ) -> NetCloneHdr {
        NetCloneHdr {
            msg_type, req_id, grp, sid,
            state: ServerState(state),
            clo, idx, switch_id, client_id, client_seq,
        }
    }
}

fn arb_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![
        any::<u64>().prop_map(|class_ns| RpcOp::Echo { class_ns }),
        any::<u64>().prop_map(|n| RpcOp::Get {
            key: KvKey::from_index(n)
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, count)| RpcOp::Scan {
            key: KvKey::from_index(n),
            count,
        }),
        (any::<u64>(), any::<u16>()).prop_map(|(n, value_len)| RpcOp::Put {
            key: KvKey::from_index(n),
            value_len,
        }),
    ]
}

prop_compose! {
    fn arb_meta()(
        nc in arb_header(),
        src in any::<u32>(),
        dst in any::<u32>(),
        dport in any::<u16>(),
    ) -> PacketMeta {
        PacketMeta {
            src_ip: Ipv4(src),
            dst_ip: Ipv4(dst),
            l4_dport: dport,
            nc,
            // Overwritten by the decoder with the measured frame length.
            wire_bytes: 0,
        }
    }
}

proptest! {
    #[test]
    fn packet_round_trips(
        meta in arb_meta(),
        op in arb_op(),
        value in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let dg = encode_packet(&meta, &op, &value);
        let total = dg.len();
        let (m2, op2, val2) = decode_packet(dg).unwrap();
        prop_assert_eq!(m2.src_ip, meta.src_ip);
        prop_assert_eq!(m2.dst_ip, meta.dst_ip);
        prop_assert_eq!(m2.l4_dport, meta.l4_dport);
        prop_assert_eq!(m2.nc, meta.nc);
        prop_assert_eq!(op2, op);
        prop_assert_eq!(&val2[..], &value[..]);
        prop_assert_eq!(m2.wire_bytes as usize, total);
    }

    #[test]
    fn truncated_prefixes_never_panic(
        meta in arb_meta(),
        op in arb_op(),
        cut in any::<u16>(),
    ) {
        let dg = encode_packet(&meta, &op, b"tail");
        let cut = (cut as usize) % dg.len();
        // Any strict prefix must either decode (when only value bytes were
        // cut) or error cleanly — never panic.
        let _ = decode_packet(dg.slice(0..cut));
    }
}
