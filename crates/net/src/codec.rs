//! Datagram framing for the soft-switch fabric.
//!
//! Real IP headers belong to the host's stack (and on loopback everything
//! is 127.0.0.1), so each datagram carries a 10-byte virtual-L3 preheader
//! — source, destination, and L4 destination port as the switch sees them
//! — followed by the standard NetClone header and operation payload from
//! [`netclone_proto::wire`]:
//!
//! ```text
//! [src_ip u32][dst_ip u32][l4_dport u16][NetClone header 20B][op …][value …]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netclone_proto::wire::{self, WireError};
use netclone_proto::{Ipv4, PacketMeta, RpcOp};

/// Preheader length: virtual src (4) + dst (4) + dport (2).
pub const PREHEADER_LEN: usize = 10;

/// Encodes a packet (and optional trailing value bytes) into a datagram.
pub fn encode_packet(meta: &PacketMeta, op: &RpcOp, value: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(PREHEADER_LEN + wire::HEADER_LEN + 24 + value.len());
    encode_packet_buf(meta, op, value, &mut b);
    b.freeze()
}

/// Encodes a packet into a caller-owned reusable buffer (cleared first).
///
/// The allocation-free twin of [`encode_packet`]: a hot loop that keeps
/// one `Vec<u8>` per slot pays for its capacity once and never allocates
/// again — the contract the per-packet send paths rely on.
pub fn encode_packet_into(meta: &PacketMeta, op: &RpcOp, value: &[u8], buf: &mut Vec<u8>) {
    buf.clear();
    encode_packet_buf(meta, op, value, buf);
}

fn encode_packet_buf<B: BufMut>(meta: &PacketMeta, op: &RpcOp, value: &[u8], b: &mut B) {
    b.put_u32(meta.src_ip.0);
    b.put_u32(meta.dst_ip.0);
    b.put_u16(meta.l4_dport);
    wire::encode_header(&meta.nc, b);
    wire::encode_op(op, b);
    b.put_slice(value);
}

/// Decodes a datagram into (metadata, op, trailing value bytes).
pub fn decode_packet(mut datagram: Bytes) -> Result<(PacketMeta, RpcOp, Bytes), WireError> {
    if datagram.len() < PREHEADER_LEN {
        return Err(WireError::Truncated {
            needed: PREHEADER_LEN,
            have: datagram.len(),
        });
    }
    let src_ip = Ipv4(datagram.get_u32());
    let dst_ip = Ipv4(datagram.get_u32());
    let l4_dport = datagram.get_u16();
    // The preheader has been consumed; the NetClone header, op, and value
    // are all still in `datagram`, so the total frame length is just the
    // preheader plus what remains.
    let wire_len = (PREHEADER_LEN + datagram.len()).min(u16::MAX as usize);
    let (nc, op) = wire::decode_frame(&mut datagram)?;
    Ok((
        PacketMeta {
            src_ip,
            dst_ip,
            l4_dport,
            nc,
            wire_bytes: wire_len as u16,
        },
        op,
        datagram,
    ))
}

/// Decodes a datagram straight from a borrowed receive buffer — no copy
/// into an owned `Bytes`, no allocation. The trailing value bytes are a
/// sub-slice of `datagram`; callers that must keep the value past the
/// buffer's next reuse copy it themselves (or use [`decode_packet`]).
pub fn decode_packet_borrowed(
    mut datagram: &[u8],
) -> Result<(PacketMeta, RpcOp, &[u8]), WireError> {
    if datagram.len() < PREHEADER_LEN {
        return Err(WireError::Truncated {
            needed: PREHEADER_LEN,
            have: datagram.len(),
        });
    }
    let src_ip = Ipv4(datagram.get_u32());
    let dst_ip = Ipv4(datagram.get_u32());
    let l4_dport = datagram.get_u16();
    let wire_len = (PREHEADER_LEN + datagram.len()).min(u16::MAX as usize);
    let (nc, op) = wire::decode_frame(&mut datagram)?;
    Ok((
        PacketMeta {
            src_ip,
            dst_ip,
            l4_dport,
            nc,
            wire_bytes: wire_len as u16,
        },
        op,
        datagram,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{KvKey, NetCloneHdr, NETCLONE_UDP_PORT};

    #[test]
    fn round_trip_with_value() {
        let meta = PacketMeta::netclone_response(
            Ipv4::server(3),
            Ipv4::client(1),
            NetCloneHdr::request(5, 1, 1, 99),
            0,
        );
        let op = RpcOp::Get {
            key: KvKey::from_index(7),
        };
        let dg = encode_packet(&meta, &op, b"VALUE64");
        let (m2, op2, val) = decode_packet(dg).unwrap();
        assert_eq!(m2.src_ip, meta.src_ip);
        assert_eq!(m2.dst_ip, meta.dst_ip);
        assert_eq!(m2.l4_dport, NETCLONE_UDP_PORT);
        assert_eq!(m2.nc, meta.nc);
        assert_eq!(op2, op);
        assert_eq!(&val[..], b"VALUE64");
    }

    #[test]
    fn truncated_datagrams_error() {
        assert!(decode_packet(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn wire_bytes_counts_every_byte_exactly_once() {
        // Regression: wire_bytes used to add HEADER_LEN to a buffer that
        // still *contained* the header, counting those 20 bytes twice.
        let meta =
            PacketMeta::netclone_request(Ipv4::client(2), NetCloneHdr::request(1, 2, 3, 4), 0);

        // Echo op: 1 tag byte + 8 payload bytes.
        let dg = encode_packet(&meta, &RpcOp::Echo { class_ns: 25_000 }, &[]);
        assert_eq!(dg.len(), PREHEADER_LEN + wire::HEADER_LEN + 9);
        let (m, _, _) = decode_packet(dg).unwrap();
        assert_eq!(m.wire_bytes, 39, "10B preheader + 20B header + 9B op");

        // Get op (1 + 16 key bytes) with a 64-byte value.
        let dg = encode_packet(
            &meta,
            &RpcOp::Get {
                key: KvKey::from_index(1),
            },
            &[0xAB; 64],
        );
        let total = dg.len();
        assert_eq!(total, PREHEADER_LEN + wire::HEADER_LEN + 17 + 64);
        let (m, _, val) = decode_packet(dg).unwrap();
        assert_eq!(m.wire_bytes as usize, total);
        assert_eq!(val.len(), 64);
    }

    #[test]
    fn borrowed_and_owned_paths_agree() {
        let meta = PacketMeta::netclone_response(
            Ipv4::server(1),
            Ipv4::client(0),
            NetCloneHdr::request(3, 0, 0, 42),
            0,
        );
        let op = RpcOp::Get {
            key: KvKey::from_index(9),
        };
        let owned = encode_packet(&meta, &op, b"VALUE");
        let mut reused = Vec::new();
        encode_packet_into(&meta, &op, b"VALUE", &mut reused);
        assert_eq!(&owned[..], &reused[..]);
        // Reuse must clear the previous contents.
        encode_packet_into(&meta, &op, b"V2", &mut reused);
        let cap = reused.capacity();
        encode_packet_into(&meta, &op, b"VALUE", &mut reused);
        assert_eq!(&owned[..], &reused[..]);
        assert_eq!(reused.capacity(), cap, "steady-state reuse reallocated");

        let (m1, o1, v1) = decode_packet(owned.clone()).unwrap();
        let (m2, o2, v2) = decode_packet_borrowed(&owned).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(o1, o2);
        assert_eq!(&v1[..], v2);
        assert!(decode_packet_borrowed(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_value_round_trips() {
        let meta =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 0);
        let dg = encode_packet(&meta, &RpcOp::Echo { class_ns: 50_000 }, &[]);
        let (_, op, val) = decode_packet(dg).unwrap();
        assert_eq!(op, RpcOp::Echo { class_ns: 50_000 });
        assert!(val.is_empty());
    }
}
