//! # netclone-net
//!
//! A real-socket runtime for NetClone: the **same** switch program that
//! drives the simulator — any [`netclone-core`] `SwitchEngine`, by
//! default the genuine `NetCloneSwitch` — running as a userspace *soft
//! switch* over UDP sockets, plus threaded servers and clients speaking
//! the wire format of [`netclone-proto::wire`]. The cross-frontend
//! equivalence test at the workspace root proves the soft switch and the
//! discrete-event simulator execute the identical program.
//!
//! This is the closest laptop-scale equivalent of the paper's testbed
//! (Tofino ToR + VMA hosts): virtual L3 addresses are carried in a small
//! preheader so the switch can rewrite destinations exactly as the ASIC
//! rewrites `dst_ip`, and all forwarding decisions — cloning, recirculation
//! (performed internally by the program), state tracking, response
//! filtering — are the genuine Algorithm 1 implementation.
//!
//! The host protocol logic — addressing, duplicate filtering, the §3.4
//! clone-drop rule, clone-win/redundant/lost accounting — is **not**
//! implemented here: every client and server in this crate is a socket
//! driver over the sans-io cores in [`netclone-hostcore`], the same state
//! machines the discrete-event simulator runs.
//!
//! Concurrency is sharded, not queued: the open-loop client runs one
//! thread per worker, each owning its own `ClientCore` and socket; the
//! server runs one receive thread per worker, each owning its own
//! `ServerCore` (the §3.4 "queue" the clone-drop rule consults is the
//! batch backlog behind each request). The per-packet paths are
//! allocation-free and batched ([`batch`]: `sendmmsg`/`recvmmsg` on
//! Linux behind the `mmsg` feature, portable loop elsewhere);
//! `parking_lot` guards only the shared switch state, with explicit
//! shutdown flags and joined threads on drop.
//!
//! [`netclone-core`]: ../netclone_core/index.html
//! [`netclone-hostcore`]: ../netclone_hostcore/index.html
//! [`netclone-proto::wire`]: ../netclone_proto/wire/index.html

pub mod batch;
pub mod client;
pub mod codec;
pub mod openloop;
pub mod server;
pub mod shim;
pub mod switch;
pub mod testbed;
pub mod work;

pub use batch::{path_counters, DeadlineTimeout, PathCounters, RecvBatch, SendBatch};
pub use client::{CallError, CallReply, UdpClient};
pub use codec::{decode_packet, decode_packet_borrowed, encode_packet, encode_packet_into};
pub use openloop::{OpenLoopClient, OpenLoopReport, OpenLoopSpec, WorkerReport};
pub use server::{ServerHandle, UdpServerConfig};
pub use shim::{FaultAction, FaultDirection, FaultPlan, FaultShim, FaultWindow};
pub use switch::{SoftSwitch, SwitchHandle};
pub use testbed::Testbed;
pub use work::WorkExecutor;
