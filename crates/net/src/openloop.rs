//! Open-loop load generation over real sockets — the §4.2 client ("the
//! inter-arrival time between two consecutive requests is exponentially
//! distributed"), sharded across worker threads.
//!
//! Each worker owns its **own** [`ClientCore`] — the core is sans-io and
//! owns its seq space, so giving every worker a disjoint `cid` partition
//! and a per-worker RNG stream derived from the seed removes the global
//! `Mutex<ClientCore>` the first version of this module serialized every
//! request through. A worker is one thread running both roles: it paces
//! exponential-gap sends (batched through [`SendBatch`], `sendmmsg` on
//! Linux) and busy-polls its own socket for responses (batched through
//! [`RecvBatch`], borrowed decode), so the per-packet path takes no lock,
//! performs no allocation, and issues a fraction of a syscall per packet.
//! All accounting — completed, redundant, clone-win, lost — is still the
//! core's, identical to the DES client and to [`crate::UdpClient`]; the
//! run merges per-worker [`ClientStats`] and latency histograms into one
//! [`OpenLoopReport`] that keeps the per-worker breakdown.
//!
//! Worker 0 uses the spec seed verbatim, so a `workers: 1` run generates
//! the exact request stream (addressing, GRP/IDX draws, seq numbers) the
//! pre-sharding client generated for the same seed.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use netclone_hostcore::{ClientCore, ClientMode, ClientStats};
use netclone_proto::{Ipv4, RpcOp};
use netclone_stats::LatencyHistogram;
use netclone_workloads::PoissonArrivals;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{RecvBatch, SendBatch};
use crate::codec::{decode_packet_borrowed, encode_packet_into};

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Target request rate, requests/second, **aggregate** across workers
    /// (each worker paces at `rate_rps / workers`).
    pub rate_rps: f64,
    /// Generation window.
    pub duration: Duration,
    /// The operation to issue (fixed class / key pattern).
    pub op: RpcOp,
    /// Extra time to wait for in-flight responses after generation stops
    /// (workers exit early once nothing is outstanding).
    pub drain: Duration,
    /// Per-request timeout: requests unanswered this long are evicted from
    /// the outstanding map and reported as `lost`.
    pub request_timeout: Duration,
    /// Number of installed groups on the switch.
    pub num_groups: u16,
    /// Number of filter tables (for the random IDX).
    pub num_filter_tables: u8,
    /// RNG seed. Worker 0 uses it verbatim; worker `w` derives its own
    /// stream with a splitmix64 step over `seed ^ w`.
    pub seed: u64,
    /// Worker threads — must match the worker count the client was bound
    /// with ([`OpenLoopClient::bind_workers`]).
    pub workers: usize,
}

/// One worker's share of an open-loop run.
#[derive(Debug)]
pub struct WorkerReport {
    /// The worker's client identity (`base_cid + worker index`).
    pub cid: u16,
    /// The worker's core counters.
    pub stats: ClientStats,
    /// Latency histogram (ns) of the worker's completed requests.
    pub latencies: LatencyHistogram,
}

/// Results of one open-loop run: merged totals plus the per-worker
/// breakdown they were folded from.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests sent.
    pub sent: u64,
    /// First responses received.
    pub completed: u64,
    /// Redundant/late responses received.
    pub redundant: u64,
    /// Completed requests won by the switch-generated clone (`CLO=2`).
    pub clone_wins: u64,
    /// Requests that never saw a response: evicted after
    /// `request_timeout`, or still outstanding when the run ended.
    pub lost: u64,
    /// Latency histogram (ns) of completed requests, all workers merged.
    pub latencies: LatencyHistogram,
    /// Per-worker reports, in worker order (worker 0 first).
    pub per_worker: Vec<WorkerReport>,
}

impl OpenLoopReport {
    /// Completion fraction.
    pub fn completion_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.completed as f64 / self.sent as f64
        }
    }

    /// Fraction of completions won by the clone copy.
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.clone_wins as f64 / self.completed as f64
        }
    }

    fn merge(per_worker: Vec<WorkerReport>) -> OpenLoopReport {
        let mut stats = ClientStats::default();
        let mut latencies = LatencyHistogram::new();
        for w in &per_worker {
            stats.merge(&w.stats);
            latencies.merge(&w.latencies);
        }
        OpenLoopReport {
            sent: stats.generated,
            completed: stats.completed,
            redundant: stats.redundant,
            clone_wins: stats.clone_wins,
            lost: stats.lost,
            latencies,
            per_worker,
        }
    }
}

/// One worker's identity + socket, fixed at bind time so every endpoint
/// can be registered with the switch before traffic flows.
struct Endpoint {
    cid: u16,
    vip: Ipv4,
    socket: UdpSocket,
}

/// An open-loop client bound to one socket per worker (register every
/// [`Self::endpoints`] entry with the switch before running).
pub struct OpenLoopClient {
    endpoints: Vec<Endpoint>,
    switch_addr: SocketAddr,
}

impl OpenLoopClient {
    /// Binds a single-worker client on `127.0.0.1`.
    pub fn bind(cid: u16, switch_addr: SocketAddr) -> std::io::Result<Self> {
        Self::bind_workers(cid, 1, switch_addr)
    }

    /// Binds `workers` worker sockets on `127.0.0.1`, with client ids
    /// `base_cid .. base_cid + workers`.
    pub fn bind_workers(
        base_cid: u16,
        workers: usize,
        switch_addr: SocketAddr,
    ) -> std::io::Result<Self> {
        if workers == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "open-loop client needs at least one worker",
            ));
        }
        let mut endpoints = Vec::with_capacity(workers);
        for w in 0..workers {
            let cid = base_cid + w as u16;
            endpoints.push(Endpoint {
                cid,
                vip: Ipv4::client(cid),
                socket: UdpSocket::bind("127.0.0.1:0")?,
            });
        }
        Ok(OpenLoopClient {
            endpoints,
            switch_addr,
        })
    }

    /// Worker count this client was bound with.
    pub fn workers(&self) -> usize {
        self.endpoints.len()
    }

    /// Worker 0's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.endpoints[0].socket.local_addr()
    }

    /// Worker 0's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.endpoints[0].vip
    }

    /// Every worker's `(cid, virtual address, socket address)`, in worker
    /// order — register each with the switch before running.
    pub fn endpoints(&self) -> std::io::Result<Vec<(u16, Ipv4, SocketAddr)>> {
        self.endpoints
            .iter()
            .map(|e| Ok((e.cid, e.vip, e.socket.local_addr()?)))
            .collect()
    }

    /// Runs worker 0 on this thread and the rest on their own threads
    /// until the window plus drain elapse (or everything outstanding is
    /// resolved); returns the merged report with per-worker breakdown.
    pub fn run(self, spec: OpenLoopSpec) -> std::io::Result<OpenLoopReport> {
        if spec.workers != self.endpoints.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "spec.workers = {} but the client was bound with {} workers",
                    spec.workers,
                    self.endpoints.len()
                ),
            ));
        }
        let epoch = Instant::now();
        let switch_addr = self.switch_addr;
        let mut endpoints = self.endpoints;
        let rest = endpoints.split_off(1);
        let ep0 = endpoints.pop().expect("bind_workers guarantees >= 1");

        let mut threads = Vec::with_capacity(rest.len());
        for (i, ep) in rest.into_iter().enumerate() {
            let spec = spec.clone();
            let windex = i + 1;
            let cid = ep.cid;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("openloop{cid}"))
                    .spawn(move || worker_loop(ep, switch_addr, &spec, windex, epoch))?,
            );
        }
        let first = worker_loop(ep0, switch_addr, &spec, 0, epoch);

        let mut reports = Vec::with_capacity(spec.workers);
        reports.push(first?);
        for t in threads {
            let report = t
                .join()
                .map_err(|_| std::io::Error::other("open-loop worker panicked"))??;
            reports.push(report);
        }
        Ok(OpenLoopReport::merge(reports))
    }
}

/// Worker 0 inherits the spec seed verbatim (pre-sharding bit-parity);
/// the rest get decorrelated streams via a splitmix64 step.
fn worker_seed(seed: u64, windex: usize) -> u64 {
    if windex == 0 {
        seed
    } else {
        splitmix64(seed ^ (windex as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One worker: paced batched sends interleaved with non-blocking batched
/// receives on a single thread, no shared state.
fn worker_loop(
    ep: Endpoint,
    switch_addr: SocketAddr,
    spec: &OpenLoopSpec,
    windex: usize,
    epoch: Instant,
) -> std::io::Result<WorkerReport> {
    /// How often the timeout sweep (`on_tick`) runs. Sweeping on every
    /// packet would make the receive path O(outstanding) under load; a
    /// fixed cadence keeps the map bounded at O(rate × timeout) entries
    /// while amortising the scan.
    const SWEEP_EVERY: Duration = Duration::from_millis(20);
    /// Spin this many empty iterations before starting to yield: on a
    /// loaded box the next packet is usually microseconds away.
    const SPIN_BEFORE_YIELD: u32 = 64;

    let seed = worker_seed(spec.seed, windex);
    let mut core = ClientCore::new(
        ep.cid,
        ClientMode::NetClone {
            num_groups: spec.num_groups,
            num_filter_tables: spec.num_filter_tables,
        },
        seed,
    )
    .with_timeout(spec.request_timeout.as_nanos() as u64);
    ep.socket.connect(switch_addr)?;
    ep.socket.set_nonblocking(true)?;

    let arrivals = PoissonArrivals::new(spec.rate_rps / spec.workers as f64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut send = SendBatch::new();
    let mut recv = RecvBatch::new();
    let gen_end = spec.duration;
    let end = spec.duration + spec.drain;
    let mut next_at = Duration::ZERO;
    let mut last_sweep = Duration::ZERO;
    let mut idle = 0u32;

    loop {
        let now = epoch.elapsed();
        if now >= end {
            break;
        }
        let mut progressed = false;

        // Send side: batch up everything due, then flush in one syscall.
        if now < gen_end && now >= next_at {
            while !send.is_full() {
                let t = epoch.elapsed();
                if t < next_at || t >= gen_end {
                    break;
                }
                core.generate(spec.op, t.as_nanos() as u64);
                let meta = core.poll().expect("NetClone mode emits one packet");
                encode_packet_into(&meta, &spec.op, &[], send.slot());
                send.commit();
                next_at += Duration::from_nanos(arrivals.next_gap_ns(&mut rng));
            }
            send.flush(&ep.socket)?;
            progressed = true;
        }

        // Receive side: drain whatever is queued, decode borrowed.
        let got = recv.recv_nonblocking(&ep.socket)?;
        if got > 0 {
            let now_ns = epoch.elapsed().as_nanos() as u64;
            for dg in recv.iter() {
                if let Ok((meta, _op, _value)) = decode_packet_borrowed(dg) {
                    core.on_packet(&meta.nc, now_ns);
                }
            }
            progressed = true;
        }

        let now = epoch.elapsed();
        if now.saturating_sub(last_sweep) >= SWEEP_EVERY {
            last_sweep = now;
            core.on_tick(now.as_nanos() as u64);
        }

        // Once generation is over, leave as soon as nothing can complete.
        if now >= gen_end && core.outstanding() == 0 {
            break;
        }

        // Idle policy: spin briefly (the common sub-µs case), then yield
        // so sibling threads run on small boxes, then sleep in short
        // bounded steps when the next send is comfortably far away.
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle <= SPIN_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                let next_evt = if now < gen_end { next_at.min(end) } else { end };
                if next_evt > now + Duration::from_millis(1) {
                    std::thread::sleep(Duration::from_micros(200));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    // Whatever is still unanswered when the run ends will never be: the
    // eviction sweep plus this final drain report it as lost.
    core.drain_outstanding();
    Ok(WorkerReport {
        cid: ep.cid,
        stats: core.stats(),
        latencies: core.latencies().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_zero_keeps_the_spec_seed() {
        assert_eq!(worker_seed(42, 0), 42);
        assert_ne!(worker_seed(42, 1), 42);
        // Distinct workers get distinct streams.
        let seeds: std::collections::HashSet<u64> = (0..8).map(|w| worker_seed(7, w)).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn bind_workers_partitions_cids() {
        let sw: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let c = OpenLoopClient::bind_workers(10, 4, sw).unwrap();
        let eps = c.endpoints().unwrap();
        assert_eq!(eps.len(), 4);
        for (w, (cid, vip, _)) in eps.iter().enumerate() {
            assert_eq!(*cid, 10 + w as u16);
            assert_eq!(*vip, Ipv4::client(*cid));
        }
        assert!(OpenLoopClient::bind_workers(0, 0, sw).is_err());
    }

    #[test]
    fn run_rejects_mismatched_worker_count() {
        let sw: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let c = OpenLoopClient::bind_workers(0, 2, sw).unwrap();
        let spec = OpenLoopSpec {
            rate_rps: 100.0,
            duration: Duration::from_millis(1),
            op: RpcOp::Echo { class_ns: 1_000 },
            drain: Duration::ZERO,
            request_timeout: Duration::from_millis(10),
            num_groups: 1,
            num_filter_tables: 2,
            seed: 1,
            workers: 3,
        };
        assert!(c.run(spec).is_err());
    }
}
