//! Open-loop load generation over real sockets — the §4.2 client: "It
//! consists of two threads, one is the sender thread and the other is the
//! receiver thread. The inter-arrival time between two consecutive
//! requests is exponentially distributed."
//!
//! Both threads drive one shared [`ClientCore`]: the sender locks it to
//! generate and address each request, the receiver locks it to classify
//! responses and to evict requests that outlived `request_timeout`
//! (bounding the outstanding map under response loss). All accounting —
//! completed, redundant, clone-win, lost — is therefore identical to the
//! DES client and to [`crate::UdpClient`].

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use netclone_hostcore::{ClientCore, ClientMode, ClientStats};
use netclone_proto::{Ipv4, RpcOp};
use netclone_stats::LatencyHistogram;
use netclone_workloads::PoissonArrivals;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::codec::{decode_packet, encode_packet};

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Target request rate, requests/second.
    pub rate_rps: f64,
    /// Generation window.
    pub duration: Duration,
    /// The operation to issue (fixed class / key pattern).
    pub op: RpcOp,
    /// Extra time to wait for in-flight responses after generation stops.
    pub drain: Duration,
    /// Per-request timeout: requests unanswered this long are evicted from
    /// the outstanding map and reported as `lost`.
    pub request_timeout: Duration,
    /// Number of installed groups on the switch.
    pub num_groups: u16,
    /// Number of filter tables (for the random IDX).
    pub num_filter_tables: u8,
    /// RNG seed.
    pub seed: u64,
}

/// Results of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests sent.
    pub sent: u64,
    /// First responses received.
    pub completed: u64,
    /// Redundant/late responses received.
    pub redundant: u64,
    /// Completed requests won by the switch-generated clone (`CLO=2`).
    pub clone_wins: u64,
    /// Requests that never saw a response: evicted after
    /// `request_timeout`, or still outstanding when the run ended.
    pub lost: u64,
    /// Latency histogram (ns) of completed requests.
    pub latencies: LatencyHistogram,
}

impl OpenLoopReport {
    /// Completion fraction.
    pub fn completion_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.completed as f64 / self.sent as f64
        }
    }

    /// Fraction of completions won by the clone copy.
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.clone_wins as f64 / self.completed as f64
        }
    }
}

/// An open-loop client bound to a socket (register [`Self::addr`] with the
/// switch before running).
pub struct OpenLoopClient {
    cid: u16,
    vip: Ipv4,
    socket: UdpSocket,
    switch_addr: SocketAddr,
}

impl OpenLoopClient {
    /// Binds on `127.0.0.1`.
    pub fn bind(cid: u16, switch_addr: SocketAddr) -> std::io::Result<Self> {
        Ok(OpenLoopClient {
            cid,
            vip: Ipv4::client(cid),
            socket: UdpSocket::bind("127.0.0.1:0")?,
            switch_addr,
        })
    }

    /// The client's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The client's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.vip
    }

    /// Runs the sender on this thread and a receiver thread until the
    /// window plus drain elapse; returns the merged report.
    pub fn run(self, spec: OpenLoopSpec) -> std::io::Result<OpenLoopReport> {
        let core = Arc::new(Mutex::new(
            ClientCore::new(
                self.cid,
                ClientMode::NetClone {
                    num_groups: spec.num_groups,
                    num_filter_tables: spec.num_filter_tables,
                },
                spec.seed,
            )
            .with_timeout(spec.request_timeout.as_nanos() as u64),
        ));
        let rx_socket = self.socket.try_clone()?;
        let epoch = Instant::now();
        let deadline = epoch + spec.duration + spec.drain;
        let receiver = {
            let core = Arc::clone(&core);
            let cid = self.cid;
            std::thread::Builder::new()
                .name(format!("openloop{cid}-rx"))
                .spawn(move || receiver_loop(rx_socket, core, epoch, deadline))?
        };

        // Sender (this thread): exponential gaps at the target rate.
        let arrivals = PoissonArrivals::new(spec.rate_rps);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut next_at = Duration::ZERO;
        while epoch.elapsed() < spec.duration {
            // Pace: sleep coarse gaps, spin the tail for μs precision.
            loop {
                let now = epoch.elapsed();
                if now >= next_at {
                    break;
                }
                let remaining = next_at - now;
                if remaining > Duration::from_micros(300) {
                    std::thread::sleep(remaining - Duration::from_micros(200));
                } else {
                    std::hint::spin_loop();
                }
            }
            let meta = {
                let mut core = core.lock();
                core.generate(spec.op, epoch.elapsed().as_nanos() as u64);
                core.poll().expect("NetClone mode emits one packet")
            };
            let datagram = encode_packet(&meta, &spec.op, &[]);
            self.socket.send_to(&datagram, self.switch_addr)?;
            next_at += Duration::from_nanos(arrivals.next_gap_ns(&mut rng));
        }

        receiver
            .join()
            .map_err(|_| std::io::Error::other("receiver thread panicked"))?;
        let mut core = core.lock();
        // Whatever is still unanswered when the run ends will never be:
        // the eviction sweep plus this final drain report it as lost.
        core.drain_outstanding();
        let stats: ClientStats = core.stats();
        Ok(OpenLoopReport {
            sent: stats.generated,
            completed: stats.completed,
            redundant: stats.redundant,
            clone_wins: stats.clone_wins,
            lost: stats.lost,
            latencies: core.latencies().clone(),
        })
    }
}

fn receiver_loop(
    socket: UdpSocket,
    core: Arc<Mutex<ClientCore>>,
    epoch: Instant,
    deadline: Instant,
) {
    /// How often the timeout sweep (`on_tick`) runs. Sweeping on every
    /// packet would make the receive path O(outstanding) under load; a
    /// fixed cadence keeps the map bounded at O(rate × timeout) entries
    /// while amortising the scan.
    const SWEEP_EVERY: Duration = Duration::from_millis(20);

    let mut buf = vec![0u8; 65_536];
    let mut last_sweep = Instant::now();
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if now.duration_since(last_sweep) >= SWEEP_EVERY {
            last_sweep = now;
            core.lock().on_tick(epoch.elapsed().as_nanos() as u64);
        }
        let _ = socket.set_read_timeout(Some((deadline - now).min(SWEEP_EVERY)));
        let len = match socket.recv(&mut buf) {
            Ok(len) => len,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let Ok((meta, _op, _value)) = decode_packet(Bytes::copy_from_slice(&buf[..len])) else {
            continue;
        };
        core.lock()
            .on_packet(&meta.nc, epoch.elapsed().as_nanos() as u64);
    }
}
