//! Open-loop load generation over real sockets — the §4.2 client ("the
//! inter-arrival time between two consecutive requests is exponentially
//! distributed"), sharded across worker threads.
//!
//! Each worker owns its **own** [`ClientCore`] — the core is sans-io and
//! owns its seq space, so giving every worker a disjoint `cid` partition
//! and a per-worker RNG stream derived from the seed removes the global
//! `Mutex<ClientCore>` the first version of this module serialized every
//! request through. A worker is one thread running both roles: it paces
//! exponential-gap sends (batched through [`SendBatch`], `sendmmsg` on
//! Linux) and busy-polls its own socket for responses (batched through
//! [`RecvBatch`], borrowed decode), so the per-packet path takes no lock,
//! performs no allocation, and issues a fraction of a syscall per packet.
//! All accounting — completed, redundant, clone-win, lost — is still the
//! core's, identical to the DES client and to [`crate::UdpClient`]; the
//! run merges per-worker [`ClientStats`] and latency histograms into one
//! [`OpenLoopReport`] that keeps the per-worker breakdown.
//!
//! Worker 0 uses the spec seed verbatim, so a `workers: 1` run generates
//! the exact request stream (addressing, GRP/IDX draws, seq numbers) the
//! pre-sharding client generated for the same seed.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use netclone_hostcore::{ClientCore, ClientMode, ClientStats, RetryPolicy};
use netclone_proto::{Ipv4, RpcOp};
use netclone_stats::LatencyHistogram;
use netclone_workloads::PoissonArrivals;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::batch::{RecvBatch, SendBatch};
use crate::codec::{decode_packet_borrowed, encode_packet_into};
use crate::shim::{FaultAction, FaultPlan, FaultShim};

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Target request rate, requests/second, **aggregate** across workers
    /// (each worker paces at `rate_rps / workers`).
    pub rate_rps: f64,
    /// Generation window.
    pub duration: Duration,
    /// The operation to issue (fixed class / key pattern).
    pub op: RpcOp,
    /// Extra time to wait for in-flight responses after generation stops
    /// (workers exit early once nothing is outstanding).
    pub drain: Duration,
    /// Per-request timeout: requests unanswered this long are evicted from
    /// the outstanding map and reported as `lost`.
    pub request_timeout: Duration,
    /// Number of installed groups on the switch.
    pub num_groups: u16,
    /// Number of filter tables (for the random IDX).
    pub num_filter_tables: u8,
    /// RNG seed. Worker 0 uses it verbatim; worker `w` derives its own
    /// stream with a splitmix64 step over `seed ^ w`.
    pub seed: u64,
    /// Worker threads — must match the worker count the client was bound
    /// with ([`OpenLoopClient::bind_workers`]).
    pub workers: usize,
    /// Client-side recovery: retransmit timed-out requests with capped
    /// exponential backoff under a per-worker retry budget. `None` keeps
    /// the evict-as-lost behaviour (`request_timeout` alone).
    pub retry: Option<RetryPolicy>,
    /// Deterministic fault injection between codec and socket
    /// ([`FaultShim`]); `None` (or an empty plan) leaves the hot path
    /// untouched.
    pub faults: Option<FaultPlan>,
    /// Test/CI knob: worker `w` panics once its elapsed time passes the
    /// given mark — first incarnation only, so the supervised restart
    /// finishes the run. `None` in every production use.
    pub crash_worker: Option<(usize, Duration)>,
}

/// One worker's share of an open-loop run.
#[derive(Debug)]
pub struct WorkerReport {
    /// The worker's client identity (`base_cid + worker index`).
    pub cid: u16,
    /// The worker's core counters, merged across incarnations (a crashed
    /// incarnation's counters are lost with its core; the report says so
    /// via [`Self::error`]).
    pub stats: ClientStats,
    /// Latency histogram (ns) of the worker's completed requests.
    pub latencies: LatencyHistogram,
    /// Times the supervisor restarted this worker after a panic.
    pub restarts: u32,
    /// The last failure the supervisor observed (a panic message or an
    /// I/O error), if any — the run still completes and reports.
    pub error: Option<String>,
}

/// Results of one open-loop run: merged totals plus the per-worker
/// breakdown they were folded from.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests sent.
    pub sent: u64,
    /// First responses received.
    pub completed: u64,
    /// Redundant/late responses received.
    pub redundant: u64,
    /// Completed requests won by the switch-generated clone (`CLO=2`).
    pub clone_wins: u64,
    /// Requests that never saw a response: evicted after
    /// `request_timeout`, or still outstanding when the run ended.
    pub lost: u64,
    /// Retransmissions issued by the [`RetryPolicy`] recovery path.
    pub retried: u64,
    /// Completions that needed at least one retransmission.
    pub retry_wins: u64,
    /// Evictions forced by an exhausted per-worker retry budget.
    pub budget_exhausted: u64,
    /// Worker restarts across the run (0 in a healthy run).
    pub restarts: u32,
    /// Latency histogram (ns) of completed requests, all workers merged.
    pub latencies: LatencyHistogram,
    /// Per-worker reports, in worker order (worker 0 first).
    pub per_worker: Vec<WorkerReport>,
}

impl OpenLoopReport {
    /// Completion fraction.
    pub fn completion_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.completed as f64 / self.sent as f64
        }
    }

    /// Fraction of completions won by the clone copy.
    pub fn clone_win_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.clone_wins as f64 / self.completed as f64
        }
    }

    /// Workers that reported a failure (panic or I/O error), in worker
    /// order.
    pub fn worker_errors(&self) -> Vec<(u16, &str)> {
        self.per_worker
            .iter()
            .filter_map(|w| w.error.as_deref().map(|e| (w.cid, e)))
            .collect()
    }

    fn merge(per_worker: Vec<WorkerReport>) -> OpenLoopReport {
        let mut stats = ClientStats::default();
        let mut latencies = LatencyHistogram::new();
        let mut restarts = 0u32;
        for w in &per_worker {
            stats.merge(&w.stats);
            latencies.merge(&w.latencies);
            restarts += w.restarts;
        }
        OpenLoopReport {
            sent: stats.generated,
            completed: stats.completed,
            redundant: stats.redundant,
            clone_wins: stats.clone_wins,
            lost: stats.lost,
            retried: stats.retried,
            retry_wins: stats.retry_wins,
            budget_exhausted: stats.budget_exhausted,
            restarts,
            latencies,
            per_worker,
        }
    }
}

/// One worker's identity + socket, fixed at bind time so every endpoint
/// can be registered with the switch before traffic flows.
struct Endpoint {
    cid: u16,
    vip: Ipv4,
    socket: UdpSocket,
}

/// An open-loop client bound to one socket per worker (register every
/// [`Self::endpoints`] entry with the switch before running).
pub struct OpenLoopClient {
    endpoints: Vec<Endpoint>,
    switch_addr: SocketAddr,
}

impl OpenLoopClient {
    /// Binds a single-worker client on `127.0.0.1`.
    pub fn bind(cid: u16, switch_addr: SocketAddr) -> std::io::Result<Self> {
        Self::bind_workers(cid, 1, switch_addr)
    }

    /// Binds `workers` worker sockets on `127.0.0.1`, with client ids
    /// `base_cid .. base_cid + workers`.
    pub fn bind_workers(
        base_cid: u16,
        workers: usize,
        switch_addr: SocketAddr,
    ) -> std::io::Result<Self> {
        if workers == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "open-loop client needs at least one worker",
            ));
        }
        let mut endpoints = Vec::with_capacity(workers);
        for w in 0..workers {
            let cid = base_cid + w as u16;
            endpoints.push(Endpoint {
                cid,
                vip: Ipv4::client(cid),
                socket: UdpSocket::bind("127.0.0.1:0")?,
            });
        }
        Ok(OpenLoopClient {
            endpoints,
            switch_addr,
        })
    }

    /// Worker count this client was bound with.
    pub fn workers(&self) -> usize {
        self.endpoints.len()
    }

    /// Worker 0's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.endpoints[0].socket.local_addr()
    }

    /// Worker 0's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.endpoints[0].vip
    }

    /// Every worker's `(cid, virtual address, socket address)`, in worker
    /// order — register each with the switch before running.
    pub fn endpoints(&self) -> std::io::Result<Vec<(u16, Ipv4, SocketAddr)>> {
        self.endpoints
            .iter()
            .map(|e| Ok((e.cid, e.vip, e.socket.local_addr()?)))
            .collect()
    }

    /// Runs worker 0 on this thread and the rest on their own threads
    /// until the window plus drain elapse (or everything outstanding is
    /// resolved); returns the merged report with per-worker breakdown.
    pub fn run(self, spec: OpenLoopSpec) -> std::io::Result<OpenLoopReport> {
        if spec.workers != self.endpoints.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "spec.workers = {} but the client was bound with {} workers",
                    spec.workers,
                    self.endpoints.len()
                ),
            ));
        }
        let epoch = Instant::now();
        let switch_addr = self.switch_addr;
        let mut endpoints = self.endpoints;
        let rest = endpoints.split_off(1);
        let ep0 = endpoints.pop().expect("bind_workers guarantees >= 1");

        let mut threads = Vec::with_capacity(rest.len());
        for (i, ep) in rest.into_iter().enumerate() {
            let spec = spec.clone();
            let windex = i + 1;
            let cid = ep.cid;
            threads.push((
                cid,
                std::thread::Builder::new()
                    .name(format!("openloop{cid}"))
                    .spawn(move || supervised_worker(ep, switch_addr, &spec, windex, epoch))?,
            ));
        }
        let first = supervised_worker(ep0, switch_addr, &spec, 0, epoch);

        // Every worker's report is collected even when some failed: a
        // panic is caught by the worker's own supervisor, and should the
        // supervisor itself die the join failure becomes a structured
        // per-worker error instead of wedging the run.
        let mut reports = Vec::with_capacity(spec.workers);
        reports.push(first);
        for (cid, t) in threads {
            reports.push(t.join().unwrap_or_else(|_| WorkerReport {
                cid,
                stats: ClientStats::default(),
                latencies: LatencyHistogram::new(),
                restarts: 0,
                error: Some("worker supervisor panicked; stats lost".into()),
            }));
        }
        Ok(OpenLoopReport::merge(reports))
    }
}

/// Worker 0 inherits the spec seed verbatim (pre-sharding bit-parity);
/// the rest get decorrelated streams via a splitmix64 step.
fn worker_seed(seed: u64, windex: usize) -> u64 {
    if windex == 0 {
        seed
    } else {
        splitmix64(seed ^ (windex as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one worker under supervision: a panicking incarnation is caught,
/// reported, and replaced by a fresh one (new core, disjoint seq space,
/// decorrelated RNG stream) until the run window ends. The crashed
/// incarnation's core — and therefore its counters — dies with it; the
/// report carries the loss as a structured error instead of wedging the
/// join.
fn supervised_worker(
    ep: Endpoint,
    switch_addr: SocketAddr,
    spec: &OpenLoopSpec,
    windex: usize,
    epoch: Instant,
) -> WorkerReport {
    /// Give up replacing a worker that keeps dying — a crash loop is a
    /// bug to report, not to retry forever.
    const MAX_RESTARTS: u32 = 4;

    let mut restarts = 0u32;
    let mut error: Option<String> = None;
    let mut stats = ClientStats::default();
    let mut latencies = LatencyHistogram::new();
    loop {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(&ep, switch_addr, spec, windex, epoch, restarts)
        }));
        match attempt {
            Ok(Ok((s, l))) => {
                stats.merge(&s);
                latencies.merge(&l);
                break;
            }
            Ok(Err(e)) => {
                error = Some(format!("worker {windex} I/O error: {e}"));
                break;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".into());
                restarts += 1;
                error = Some(format!(
                    "worker {windex} crashed ({msg}); restarted (incarnation {restarts})"
                ));
                if restarts > MAX_RESTARTS || epoch.elapsed() >= spec.duration + spec.drain {
                    break;
                }
            }
        }
    }
    WorkerReport {
        cid: ep.cid,
        stats,
        latencies,
        restarts,
        error,
    }
}

/// One worker incarnation: paced batched sends interleaved with
/// non-blocking batched receives on a single thread, no shared state.
/// Incarnation `i > 0` (a post-crash replacement) claims a disjoint seq
/// space and a decorrelated RNG stream, so stale responses to the dead
/// incarnation's requests can never complete the new one's.
fn worker_loop(
    ep: &Endpoint,
    switch_addr: SocketAddr,
    spec: &OpenLoopSpec,
    windex: usize,
    epoch: Instant,
    incarnation: u32,
) -> std::io::Result<(ClientStats, LatencyHistogram)> {
    /// How often the timeout sweep (`on_tick`) runs. Sweeping on every
    /// packet would make the receive path O(outstanding) under load; a
    /// fixed cadence keeps the map bounded at O(rate × timeout) entries
    /// while amortising the scan.
    const SWEEP_EVERY: Duration = Duration::from_millis(20);
    /// Spin this many empty iterations before starting to yield: on a
    /// loaded box the next packet is usually microseconds away.
    const SPIN_BEFORE_YIELD: u32 = 64;

    let seed = if incarnation == 0 {
        worker_seed(spec.seed, windex)
    } else {
        splitmix64(worker_seed(spec.seed, windex) ^ incarnation as u64)
    };
    let core = ClientCore::new(
        ep.cid,
        ClientMode::NetClone {
            num_groups: spec.num_groups,
            num_filter_tables: spec.num_filter_tables,
        },
        seed,
    );
    let mut core = match spec.retry {
        Some(policy) => core.with_retry(policy),
        None => core.with_timeout(spec.request_timeout.as_nanos() as u64),
    }
    // 2^24 seqs per incarnation: far beyond any run, and stale responses
    // addressed to a crashed incarnation land outside the live map.
    .with_seq_base(incarnation << 24);
    let mut shim = spec
        .faults
        .as_ref()
        .filter(|p| !p.is_empty())
        .map(|p| FaultShim::for_worker(p, windex));
    ep.socket.connect(switch_addr)?;
    ep.socket.set_nonblocking(true)?;

    let arrivals = PoissonArrivals::new(spec.rate_rps / spec.workers as f64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut send = SendBatch::new();
    let mut recv = RecvBatch::new();
    let gen_end = spec.duration;
    let end = spec.duration + spec.drain;
    // The epoch is shared across incarnations: a replacement spawned at
    // elapsed time T must resume pacing from T, or `now >= next_at` holds
    // for the whole elapsed window and the restart emits a catch-up burst
    // of ~rate*T packets. Incarnation 0 starts at ZERO (the schedule's
    // origin), preserving the pre-sharding pacing exactly.
    let start = if incarnation == 0 {
        Duration::ZERO
    } else {
        epoch.elapsed()
    };
    let mut next_at = start;
    let mut last_sweep = start;
    let mut idle = 0u32;

    loop {
        let now = epoch.elapsed();
        if now >= end {
            break;
        }
        // The injected crash point (CI smoke for the supervisor): first
        // incarnation only, so the restarted worker finishes the run.
        if incarnation == 0 {
            if let Some((w, at)) = spec.crash_worker {
                if w == windex && now >= at {
                    panic!("injected worker crash");
                }
            }
        }
        let mut progressed = false;

        // Send side: batch up everything due, then flush in one syscall.
        if now < gen_end && now >= next_at {
            while !send.is_full() {
                let t = epoch.elapsed();
                if t < next_at || t >= gen_end {
                    break;
                }
                core.generate(spec.op, t.as_nanos() as u64);
                let meta = core.poll().expect("NetClone mode emits one packet");
                encode_packet_into(&meta, &spec.op, &[], send.slot());
                commit_through_shim(&mut send, &mut shim, t, &ep.socket)?;
                next_at += Duration::from_nanos(arrivals.next_gap_ns(&mut rng));
            }
            send.flush(&ep.socket)?;
            progressed = true;
        }

        // Delayed datagrams whose hold expired: outbound ones go to the
        // socket, inbound ones to the decoder.
        if let Some(s) = shim.as_mut() {
            let mut released = false;
            while let Some(p) = s.due_tx(now) {
                send.slot().clear();
                send.slot().extend_from_slice(&p);
                send.commit();
                if send.is_full() {
                    send.flush(&ep.socket)?;
                }
                released = true;
            }
            if released {
                send.flush(&ep.socket)?;
                progressed = true;
            }
            while let Some(p) = s.due_rx(now) {
                if let Ok((meta, _op, _value)) = decode_packet_borrowed(&p) {
                    core.on_packet(&meta.nc, now.as_nanos() as u64);
                }
                progressed = true;
            }
        }

        // Receive side: drain whatever is queued, decode borrowed.
        let got = recv.recv_nonblocking(&ep.socket)?;
        if got > 0 {
            let nowd = epoch.elapsed();
            let now_ns = nowd.as_nanos() as u64;
            for dg in recv.iter() {
                let action = shim
                    .as_mut()
                    .map_or(FaultAction::Deliver, |s| s.on_rx(nowd, dg));
                match action {
                    FaultAction::Drop | FaultAction::Delay => continue,
                    FaultAction::Deliver | FaultAction::Duplicate => {
                        if let Ok((meta, _op, _value)) = decode_packet_borrowed(dg) {
                            core.on_packet(&meta.nc, now_ns);
                            if action == FaultAction::Duplicate {
                                core.on_packet(&meta.nc, now_ns);
                            }
                        }
                    }
                }
            }
            progressed = true;
        }

        let now = epoch.elapsed();
        if now.saturating_sub(last_sweep) >= SWEEP_EVERY {
            last_sweep = now;
            core.on_tick(now.as_nanos() as u64);
            // The sweep may have scheduled retransmissions (when the core
            // runs a retry policy): drain them through the same batched,
            // shimmed send path as first transmissions.
            let mut retried = false;
            while let Some(meta) = core.poll() {
                let op = core
                    .pending_op(meta.nc.client_seq)
                    .expect("a retransmitted request is still outstanding");
                encode_packet_into(&meta, &op, &[], send.slot());
                commit_through_shim(&mut send, &mut shim, now, &ep.socket)?;
                retried = true;
            }
            if retried {
                send.flush(&ep.socket)?;
            }
        }

        // Once generation is over, leave as soon as nothing can complete.
        if now >= gen_end && core.outstanding() == 0 {
            break;
        }

        // Idle policy: spin briefly (the common sub-µs case), then yield
        // so sibling threads run on small boxes, then sleep in short
        // bounded steps when the next send is comfortably far away.
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle <= SPIN_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                let next_evt = if now < gen_end { next_at.min(end) } else { end };
                if next_evt > now + Duration::from_millis(1) {
                    std::thread::sleep(Duration::from_micros(200));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    // Whatever is still unanswered when the run ends will never be: the
    // eviction sweep plus this final drain report it as lost.
    core.drain_outstanding();
    Ok((core.stats(), core.latencies().clone()))
}

/// Commits the encoded datagram sitting in `send.slot()` subject to the
/// shim's verdict: deliver commits once, duplicate twice, drop and delay
/// skip the commit (the shim keeps the delayed copy). Every commit that
/// fills the batch flushes it, so callers may drain an unbounded stream
/// (e.g. a retransmission sweep after a stall) through this path without
/// ever handing `SendBatch::slot` a full batch.
fn commit_through_shim(
    send: &mut SendBatch,
    shim: &mut Option<FaultShim>,
    now: Duration,
    sock: &UdpSocket,
) -> std::io::Result<()> {
    let action = shim
        .as_mut()
        .map_or(FaultAction::Deliver, |s| s.on_tx(now, send.slot()));
    match action {
        FaultAction::Drop | FaultAction::Delay => {}
        FaultAction::Deliver => {
            send.commit();
            if send.is_full() {
                send.flush(sock)?;
            }
        }
        FaultAction::Duplicate => {
            let dup = send.slot().clone();
            send.commit();
            if send.is_full() {
                send.flush(sock)?;
            }
            send.slot().clear();
            send.slot().extend_from_slice(&dup);
            send.commit();
            if send.is_full() {
                send.flush(sock)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_zero_keeps_the_spec_seed() {
        assert_eq!(worker_seed(42, 0), 42);
        assert_ne!(worker_seed(42, 1), 42);
        // Distinct workers get distinct streams.
        let seeds: std::collections::HashSet<u64> = (0..8).map(|w| worker_seed(7, w)).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn bind_workers_partitions_cids() {
        let sw: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let c = OpenLoopClient::bind_workers(10, 4, sw).unwrap();
        let eps = c.endpoints().unwrap();
        assert_eq!(eps.len(), 4);
        for (w, (cid, vip, _)) in eps.iter().enumerate() {
            assert_eq!(*cid, 10 + w as u16);
            assert_eq!(*vip, Ipv4::client(*cid));
        }
        assert!(OpenLoopClient::bind_workers(0, 0, sw).is_err());
    }

    #[test]
    fn commit_through_shim_flushes_instead_of_overflowing() {
        use crate::batch::BATCH;
        use crate::shim::{FaultDirection, FaultWindow};

        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let peer = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(peer.local_addr().unwrap()).unwrap();

        // No shim: an unbounded drain (e.g. a retransmission sweep after a
        // stall) must flush as the batch fills, never panic in slot().
        let mut send = SendBatch::new();
        let mut shim: Option<FaultShim> = None;
        for i in 0..(3 * BATCH + 5) {
            let slot = send.slot();
            slot.clear();
            slot.push(i as u8);
            commit_through_shim(&mut send, &mut shim, Duration::ZERO, &sock).unwrap();
        }
        send.flush(&sock).unwrap();

        // Duplicate-everything shim: the second commit of each pair must
        // also flush when it fills the batch.
        let mut shim = Some(FaultShim::new(
            1,
            vec![FaultWindow {
                from: Duration::ZERO,
                until: Duration::from_secs(1),
                direction: FaultDirection::Tx,
                drop_prob: 0.0,
                dup_prob: 1.0,
                delay: Duration::ZERO,
            }],
        ));
        let mut send = SendBatch::new();
        for i in 0..(2 * BATCH) {
            let slot = send.slot();
            slot.clear();
            slot.push(i as u8);
            commit_through_shim(&mut send, &mut shim, Duration::from_millis(1), &sock).unwrap();
        }
        send.flush(&sock).unwrap();
    }

    #[test]
    fn run_rejects_mismatched_worker_count() {
        let sw: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let c = OpenLoopClient::bind_workers(0, 2, sw).unwrap();
        let spec = OpenLoopSpec {
            rate_rps: 100.0,
            duration: Duration::from_millis(1),
            op: RpcOp::Echo { class_ns: 1_000 },
            drain: Duration::ZERO,
            request_timeout: Duration::from_millis(10),
            num_groups: 1,
            num_filter_tables: 2,
            seed: 1,
            workers: 3,
            retry: None,
            faults: None,
            crash_worker: None,
        };
        assert!(c.run(spec).is_err());
    }
}
