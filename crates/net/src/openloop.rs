//! Open-loop load generation over real sockets — the §4.2 client: "It
//! consists of two threads, one is the sender thread and the other is the
//! receiver thread. The inter-arrival time between two consecutive
//! requests is exponentially distributed."

use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, RpcOp};
use netclone_stats::LatencyHistogram;
use netclone_workloads::PoissonArrivals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{decode_packet, encode_packet};

/// Parameters of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// Target request rate, requests/second.
    pub rate_rps: f64,
    /// Generation window.
    pub duration: Duration,
    /// The operation to issue (fixed class / key pattern).
    pub op: RpcOp,
    /// Extra time to wait for in-flight responses after generation stops.
    pub drain: Duration,
    /// Number of installed groups on the switch.
    pub num_groups: u16,
    /// Number of filter tables (for the random IDX).
    pub num_filter_tables: u8,
    /// RNG seed.
    pub seed: u64,
}

/// Results of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests sent.
    pub sent: u64,
    /// First responses received.
    pub completed: u64,
    /// Redundant/late responses received.
    pub redundant: u64,
    /// Latency histogram (ns) of completed requests.
    pub latencies: LatencyHistogram,
}

impl OpenLoopReport {
    /// Completion fraction.
    pub fn completion_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.completed as f64 / self.sent as f64
        }
    }
}

/// An open-loop client bound to a socket (register [`Self::addr`] with the
/// switch before running).
pub struct OpenLoopClient {
    cid: u16,
    vip: Ipv4,
    socket: UdpSocket,
    switch_addr: SocketAddr,
}

impl OpenLoopClient {
    /// Binds on `127.0.0.1`.
    pub fn bind(cid: u16, switch_addr: SocketAddr) -> std::io::Result<Self> {
        Ok(OpenLoopClient {
            cid,
            vip: Ipv4::client(cid),
            socket: UdpSocket::bind("127.0.0.1:0")?,
            switch_addr,
        })
    }

    /// The client's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The client's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.vip
    }

    /// Runs the sender on this thread and a receiver thread until the
    /// window plus drain elapse; returns the merged report.
    pub fn run(self, spec: OpenLoopSpec) -> std::io::Result<OpenLoopReport> {
        let rx_socket = self.socket.try_clone()?;
        let deadline = Instant::now() + spec.duration + spec.drain;
        type SendRecord = (u32, Instant);
        let (meta_tx, meta_rx): (Sender<SendRecord>, Receiver<SendRecord>) = unbounded();
        let cid = self.cid;
        let receiver = std::thread::Builder::new()
            .name(format!("openloop{cid}-rx"))
            .spawn(move || receiver_loop(rx_socket, meta_rx, cid, deadline))?;

        // Sender (this thread): exponential gaps at the target rate.
        let arrivals = PoissonArrivals::new(spec.rate_rps);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let start = Instant::now();
        let mut next_at = Duration::ZERO;
        let mut seq: u32 = 0;
        let mut sent = 0u64;
        while start.elapsed() < spec.duration {
            // Pace: sleep coarse gaps, spin the tail for μs precision.
            loop {
                let now = start.elapsed();
                if now >= next_at {
                    break;
                }
                let remaining = next_at - now;
                if remaining > Duration::from_micros(300) {
                    std::thread::sleep(remaining - Duration::from_micros(200));
                } else {
                    std::hint::spin_loop();
                }
            }
            let grp = rng.random_range(0..spec.num_groups.max(1));
            let idx = rng.random_range(0..spec.num_filter_tables.max(1));
            let nc = NetCloneHdr::request(grp, idx, cid, seq);
            let meta = PacketMeta::netclone_request(self.vip, nc, 0);
            let datagram = encode_packet(&meta, &spec.op, &[]);
            meta_tx.send((seq, Instant::now())).ok();
            self.socket.send_to(&datagram, self.switch_addr)?;
            sent += 1;
            seq = seq.wrapping_add(1);
            next_at += Duration::from_nanos(arrivals.next_gap_ns(&mut rng));
        }
        drop(meta_tx); // receiver sees the disconnect after draining

        let (completed, redundant, latencies) = receiver
            .join()
            .map_err(|_| std::io::Error::other("receiver thread panicked"))?;
        Ok(OpenLoopReport {
            sent,
            completed,
            redundant,
            latencies,
        })
    }
}

fn receiver_loop(
    socket: UdpSocket,
    meta_rx: Receiver<(u32, Instant)>,
    cid: u16,
    deadline: Instant,
) -> (u64, u64, LatencyHistogram) {
    let mut outstanding: HashMap<u32, Instant> = HashMap::new();
    let mut latencies = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut redundant = 0u64;
    let mut buf = vec![0u8; 65_536];
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let _ = socket.set_read_timeout(Some((deadline - now).min(Duration::from_millis(20))));
        // Pull any send timestamps published since the last packet.
        while let Ok((seq, at)) = meta_rx.try_recv() {
            outstanding.insert(seq, at);
        }
        let len = match socket.recv(&mut buf) {
            Ok(len) => len,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let Ok((meta, _op, _value)) = decode_packet(Bytes::copy_from_slice(&buf[..len])) else {
            continue;
        };
        if !meta.nc.is_response() || meta.nc.client_id != cid {
            continue;
        }
        // The send record may still be in the channel (sender races us).
        if !outstanding.contains_key(&meta.nc.client_seq) {
            while let Ok((seq, at)) = meta_rx.try_recv() {
                outstanding.insert(seq, at);
            }
        }
        match outstanding.remove(&meta.nc.client_seq) {
            Some(at) => {
                latencies.record(at.elapsed().as_nanos() as u64);
                completed += 1;
            }
            None => redundant += 1,
        }
    }
    (completed, redundant, latencies)
}
