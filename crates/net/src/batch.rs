//! Batched UDP I/O for the real-socket hot paths.
//!
//! [`SendBatch`] and [`RecvBatch`] amortize the syscall-per-packet cost
//! that dominates microsecond-scale RPC stacks (the Dagger/NotNets
//! argument): on Linux they drive `sendmmsg`/`recvmmsg` directly (raw
//! libc syscalls declared here — the vendored dependency set is offline,
//! so no `libc` crate), moving up to [`BATCH`] datagrams per kernel
//! crossing. Everywhere else (or with the `mmsg` feature disabled) a
//! portable loop over `send`/`recv` keeps the exact same API.
//!
//! Both batchers own their buffers for their whole lifetime: every slot
//! is allocated once at construction ([`MAX_DATAGRAM`] bytes) and reused
//! for every packet after, so the steady-state per-packet path performs
//! **zero allocations** — any growth past the preallocated capacity is
//! recorded in [`path_counters`], which the loopback smoke tests pin to
//! zero. The same counters record every `set_read_timeout` syscall issued
//! through [`DeadlineTimeout`], pinning the receive path's syscall budget.

use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Datagrams moved per kernel crossing (and the slot count of each batch).
pub const BATCH: usize = 32;

/// Per-slot buffer size. Larger datagrams are legal UDP but outside this
/// fabric's envelope (a 20-byte header plus small KV values); a receive
/// that fills a slot exactly may have been truncated and is dropped by
/// the decode layer when the frame is inconsistent.
pub const MAX_DATAGRAM: usize = 8192;

/// Snapshot of the hot-path instrumentation counters.
///
/// Monotonic process-wide totals (relaxed atomics): diff two snapshots
/// around a run to assert the steady-state contract — no buffer-growth
/// allocations and no timeout syscalls on the per-packet path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCounters {
    /// Times a batch slot (or reusable encode buffer) had to grow past
    /// its preallocated capacity — an allocation on the packet path.
    pub buffer_grow_allocs: u64,
    /// `set_read_timeout` syscalls issued through [`DeadlineTimeout`].
    pub timeout_syscalls: u64,
}

static BUFFER_GROW_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TIMEOUT_SYSCALLS: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide [`PathCounters`].
pub fn path_counters() -> PathCounters {
    PathCounters {
        buffer_grow_allocs: BUFFER_GROW_ALLOCS.load(Ordering::Relaxed),
        timeout_syscalls: TIMEOUT_SYSCALLS.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_buffer_grow() {
    BUFFER_GROW_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Records a growth event when a reusable buffer's capacity exceeded the
/// high-water mark in `cap_seen` (updating the mark) — how loops that own
/// a plain `Vec<u8>` encode buffer keep it under the zero-alloc counter.
pub(crate) fn note_growth(cap_seen: &mut usize, cap_now: usize) {
    if cap_now > *cap_seen {
        *cap_seen = cap_now;
        note_buffer_grow();
    }
}

fn note_timeout_syscall() {
    TIMEOUT_SYSCALLS.fetch_add(1, Ordering::Relaxed);
}

/// A reusable outgoing batch for a **connected** UDP socket.
///
/// Stage up to [`BATCH`] datagrams by encoding into [`SendBatch::slot`]
/// and calling [`SendBatch::commit`], then [`SendBatch::flush`] moves
/// them with one `sendmmsg` (Linux) or a `send` loop (portable path).
pub struct SendBatch {
    slots: Vec<Vec<u8>>,
    caps: Vec<usize>,
    used: usize,
}

impl Default for SendBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl SendBatch {
    /// Allocates the batch's slots (the only allocation it ever makes).
    pub fn new() -> Self {
        SendBatch {
            slots: (0..BATCH)
                .map(|_| Vec::with_capacity(MAX_DATAGRAM))
                .collect(),
            caps: vec![MAX_DATAGRAM; BATCH],
            used: 0,
        }
    }

    /// The next free slot to encode into. Panics if the batch is full —
    /// check [`SendBatch::is_full`] first.
    pub fn slot(&mut self) -> &mut Vec<u8> {
        &mut self.slots[self.used]
    }

    /// Marks the current slot as staged.
    pub fn commit(&mut self) {
        let cap = self.slots[self.used].capacity();
        if cap > self.caps[self.used] {
            self.caps[self.used] = cap;
            note_buffer_grow();
        }
        self.used += 1;
    }

    /// Staged datagrams.
    pub fn len(&self) -> usize {
        self.used
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// True when every slot is staged.
    pub fn is_full(&self) -> bool {
        self.used == BATCH
    }

    /// Sends every staged datagram on the connected socket and clears the
    /// batch. Returns how many were sent.
    pub fn flush(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        let n = self.used;
        if n == 0 {
            return Ok(0);
        }
        self.used = 0;
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            mmsg::send_all(sock, &self.slots[..n])?;
            Ok(n)
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            for s in &self.slots[..n] {
                sock.send(s)?;
            }
            Ok(n)
        }
    }
}

/// A reusable incoming batch.
///
/// One call fills up to [`BATCH`] slots; [`RecvBatch::datagram`] /
/// [`RecvBatch::iter`] then borrow the received bytes in place — pair
/// with [`crate::codec::decode_packet_borrowed`] for a copy-free,
/// allocation-free receive path.
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    lens: [usize; BATCH],
    count: usize,
}

impl Default for RecvBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl RecvBatch {
    /// Allocates the batch's buffers (the only allocation it ever makes).
    pub fn new() -> Self {
        RecvBatch {
            bufs: (0..BATCH).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            lens: [0; BATCH],
            count: 0,
        }
    }

    /// Datagrams received by the last call.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the last call received nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `i`-th received datagram of the last call.
    pub fn datagram(&self, i: usize) -> &[u8] {
        &self.bufs[i][..self.lens[i]]
    }

    /// Iterates the datagrams of the last call.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.count).map(|i| self.datagram(i))
    }

    /// Receives without blocking: fills as many slots as the socket
    /// already holds and returns the count (0 when none are pending).
    /// The socket must be in non-blocking mode on the portable path;
    /// the Linux path forces `MSG_DONTWAIT` either way.
    pub fn recv_nonblocking(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            self.count = mmsg::recv_nonblocking(sock, &mut self.bufs, &mut self.lens, 0)?;
        }
        #[cfg(not(all(target_os = "linux", feature = "mmsg")))]
        {
            self.count = portable_drain(sock, &mut self.bufs, &mut self.lens, 0)?;
        }
        Ok(self.count)
    }

    /// Blocks (honoring the socket's read timeout) for the first
    /// datagram, then drains whatever else is already queued without
    /// blocking again. Returns 0 on timeout.
    pub fn recv_timeout_then_drain(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        self.count = 0;
        match sock.recv(&mut self.bufs[0]) {
            Ok(len) => {
                self.lens[0] = len;
                self.count = 1;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(0);
            }
            Err(e) => return Err(e),
        }
        #[cfg(all(target_os = "linux", feature = "mmsg"))]
        {
            self.count += mmsg::recv_nonblocking(sock, &mut self.bufs, &mut self.lens, 1)?;
        }
        // Portable path: a blocking socket cannot drain more without
        // risking a second block — batch size degrades to 1.
        Ok(self.count)
    }
}

/// Portable non-blocking drain: repeated `recv` on a non-blocking socket.
#[cfg(not(all(target_os = "linux", feature = "mmsg")))]
fn portable_drain(
    sock: &UdpSocket,
    bufs: &mut [Vec<u8>],
    lens: &mut [usize; BATCH],
    from: usize,
) -> io::Result<usize> {
    let mut got = 0;
    for i in from..BATCH {
        match sock.recv(&mut bufs[i]) {
            Ok(len) => {
                lens[i] = len;
                got += 1;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// A deadline-aware wrapper over `set_read_timeout` that only issues the
/// syscall when the remaining time crosses a bucket boundary.
///
/// Blocking receive loops used to re-arm the socket timeout on **every**
/// iteration — a syscall per received packet. Quantizing the remaining
/// deadline (20 ms cap, 5 ms buckets below that) keeps the arming cost
/// at a handful of syscalls per deadline instead; the caller re-checks
/// its own clock after each wake, so the bucket slack never extends the
/// true deadline by more than one bucket.
#[derive(Debug, Default)]
pub struct DeadlineTimeout {
    armed: Option<Duration>,
}

impl DeadlineTimeout {
    /// A helper that has not armed any timeout yet.
    pub fn new() -> Self {
        DeadlineTimeout::default()
    }

    /// Arms the socket's read timeout for `remaining`, skipping the
    /// syscall when the quantized value is already armed.
    pub fn arm(&mut self, sock: &UdpSocket, remaining: Duration) -> io::Result<()> {
        const CAP: Duration = Duration::from_millis(20);
        const STEP_MS: u64 = 5;
        let bucket = if remaining >= CAP {
            CAP
        } else {
            // Ceiling to the next 5 ms step, never zero (zero would mean
            // "no timeout" to the OS).
            Duration::from_millis(((remaining.as_millis() as u64 / STEP_MS) + 1) * STEP_MS)
        };
        if self.armed != Some(bucket) {
            sock.set_read_timeout(Some(bucket))?;
            note_timeout_syscall();
            self.armed = Some(bucket);
        }
        Ok(())
    }

    /// Timeout syscalls this helper has issued so far this process (all
    /// instances combined); see [`path_counters`].
    pub fn syscalls_issued() -> u64 {
        path_counters().timeout_syscalls
    }
}

/// Direct `sendmmsg`/`recvmmsg` bindings (Linux only, `mmsg` feature).
///
/// The msghdr layouts match the 64-bit System V ABI glibc/musl both use;
/// the syscall-array scratch space lives on the stack ([`BATCH`] entries),
/// so batching adds no allocations and the batch structs stay `Send`.
#[cfg(all(target_os = "linux", feature = "mmsg"))]
mod mmsg {
    use super::{BATCH, MAX_DATAGRAM};
    use std::io;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    const MSG_DONTWAIT: i32 = 0x40;

    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
    }

    fn zeroed_headers() -> [MMsgHdr; BATCH] {
        // Null pointers and zero lengths are the valid "unset" state for
        // every msghdr field.
        unsafe { std::mem::zeroed() }
    }

    /// Sends every staged slot on a connected socket via `sendmmsg`,
    /// retrying the unsent tail on partial progress.
    pub(super) fn send_all(sock: &UdpSocket, slots: &[Vec<u8>]) -> io::Result<()> {
        let fd = sock.as_raw_fd();
        let mut iovs = [IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        }; BATCH];
        let mut hdrs = zeroed_headers();
        let n = slots.len();
        for (i, s) in slots.iter().enumerate() {
            iovs[i] = IoVec {
                base: s.as_ptr() as *mut u8,
                len: s.len(),
            };
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        let mut done = 0usize;
        while done < n {
            let sent = unsafe { sendmmsg(fd, hdrs.as_mut_ptr().add(done), (n - done) as u32, 0) };
            if sent < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            done += sent as usize;
        }
        Ok(())
    }

    /// Drains already-queued datagrams into `bufs[from..]` without
    /// blocking. Returns how many were received (0 when none pending).
    pub(super) fn recv_nonblocking(
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize; BATCH],
        from: usize,
    ) -> io::Result<usize> {
        if from >= BATCH {
            return Ok(0);
        }
        let fd = sock.as_raw_fd();
        let mut iovs = [IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        }; BATCH];
        let mut hdrs = zeroed_headers();
        let want = BATCH - from;
        for i in 0..want {
            iovs[i] = IoVec {
                base: bufs[from + i].as_mut_ptr(),
                len: MAX_DATAGRAM,
            };
            hdrs[i].hdr.iov = &mut iovs[i];
            hdrs[i].hdr.iovlen = 1;
        }
        let got = unsafe {
            recvmmsg(
                fd,
                hdrs.as_mut_ptr(),
                want as u32,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            let e = io::Error::last_os_error();
            return match e.kind() {
                io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted => Ok(0),
                _ => Err(e),
            };
        }
        for i in 0..got as usize {
            lens[from + i] = hdrs[i].len as usize;
        }
        Ok(got as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.connect(b.local_addr().unwrap()).unwrap();
        b.connect(a.local_addr().unwrap()).unwrap();
        (a, b)
    }

    #[test]
    fn send_batch_round_trips_through_recv_batch() {
        let (tx, rx) = pair();
        rx.set_nonblocking(true).unwrap();
        let mut send = SendBatch::new();
        for i in 0u8..5 {
            let slot = send.slot();
            slot.clear();
            slot.extend_from_slice(&[i; 7]);
            send.commit();
        }
        assert_eq!(send.len(), 5);
        assert_eq!(send.flush(&tx).unwrap(), 5);
        assert!(send.is_empty());

        let mut recv = RecvBatch::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut got = 0;
        let mut seen = Vec::new();
        while got < 5 && std::time::Instant::now() < deadline {
            got += recv.recv_nonblocking(&rx).unwrap();
            for dg in recv.iter() {
                seen.push(dg.to_vec());
            }
        }
        assert_eq!(got, 5);
        // UDP on loopback preserves order.
        for (i, dg) in seen.iter().enumerate() {
            assert_eq!(dg, &vec![i as u8; 7]);
        }
    }

    #[test]
    fn recv_timeout_then_drain_times_out_cleanly() {
        let (_tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        let mut recv = RecvBatch::new();
        assert_eq!(recv.recv_timeout_then_drain(&rx).unwrap(), 0);
        assert!(recv.is_empty());
    }

    #[test]
    fn recv_timeout_then_drain_batches_queued_datagrams() {
        let (tx, rx) = pair();
        rx.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut send = SendBatch::new();
        for i in 0u8..9 {
            let slot = send.slot();
            slot.clear();
            slot.push(i);
            send.commit();
        }
        send.flush(&tx).unwrap();
        // Give loopback a moment to queue everything behind one wakeup.
        std::thread::sleep(Duration::from_millis(20));
        let mut recv = RecvBatch::new();
        let mut total = 0;
        while total < 9 {
            let n = recv.recv_timeout_then_drain(&rx).unwrap();
            assert!(n > 0, "timed out with datagrams pending");
            total += n;
        }
        assert_eq!(total, 9);
    }

    #[test]
    fn slot_growth_is_counted() {
        let before = path_counters().buffer_grow_allocs;
        let mut send = SendBatch::new();
        let slot = send.slot();
        slot.clear();
        slot.resize(MAX_DATAGRAM + 1, 0xAB); // force growth past prealloc
        send.commit();
        assert!(path_counters().buffer_grow_allocs > before);
    }

    #[test]
    fn deadline_timeout_arms_per_bucket_not_per_call() {
        let (_tx, rx) = pair();
        let before = path_counters().timeout_syscalls;
        let mut dt = DeadlineTimeout::new();
        // Far from the deadline: every call lands in the 20 ms cap bucket.
        for ms in [500u64, 499, 480, 320, 100, 21] {
            dt.arm(&rx, Duration::from_millis(ms)).unwrap();
        }
        let far = path_counters().timeout_syscalls - before;
        assert_eq!(far, 1, "one syscall for the whole far-out phase");
        // Closing in: at most one syscall per 5 ms bucket.
        for ms in (1u64..=19).rev() {
            dt.arm(&rx, Duration::from_millis(ms)).unwrap();
        }
        let total = path_counters().timeout_syscalls - before;
        assert!(total <= 5, "expected <=5 syscalls, got {total}");
    }
}
