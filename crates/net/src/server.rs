//! The real-socket worker server: one dispatcher thread + N worker
//! threads, faithful to §4.2, driving the shared [`ServerCore`] for the
//! §3.4 server-side rules.
//!
//! The crossbeam channel between dispatcher and workers *is* the FCFS
//! request queue: its length is the "queue" the core's clone-drop rule
//! consults and the value piggybacked on responses. The protocol logic
//! itself — drop rule, response construction, accounting — is
//! [`netclone_hostcore::ServerCore`], shared verbatim with the simulated
//! server in `netclone-hosts`.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use netclone_hostcore::{AdmitDecision, ServerCore, ServerStats};
use netclone_proto::{Ipv4, PacketMeta, RpcOp, ServerId};

use crate::codec::{decode_packet, encode_packet};
use crate::work::WorkExecutor;

/// Configuration of a real-socket server.
#[derive(Clone)]
pub struct UdpServerConfig {
    /// Server identity.
    pub sid: ServerId,
    /// Virtual address (registered with the soft switch).
    pub vip: Ipv4,
    /// Worker threads.
    pub workers: usize,
    /// What a worker does with a request.
    pub executor: WorkExecutor,
    /// Where to send responses (the soft switch).
    pub switch_addr: SocketAddr,
}

/// A running server: dispatcher + workers around one shared core. The
/// core's counters are atomics, so no lock sits on the per-packet path.
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    // Keeping one sender alive would prevent worker shutdown on dispatcher
    // exit; the dispatcher owns the only sender.
}

struct Job {
    meta: PacketMeta,
    op: RpcOp,
}

impl ServerHandle {
    /// Binds a server on `127.0.0.1` and starts its threads.
    pub fn spawn(cfg: UdpServerConfig) -> std::io::Result<ServerHandle> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let addr = socket.local_addr()?;
        let core = Arc::new(ServerCore::new(cfg.sid));
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();

        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let rx = rx.clone();
            let cfg = cfg.clone();
            let core = Arc::clone(&core);
            let sock = socket.try_clone()?;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("server{}-worker{}", cfg.sid, w))
                    .spawn(move || worker_loop(rx, cfg, core, sock))?,
            );
        }

        let dispatcher = {
            let cfg = cfg.clone();
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("server{}-dispatcher", cfg.sid))
                .spawn(move || dispatcher_loop(socket, tx, cfg, core, stop))?
        };

        Ok(ServerHandle {
            addr,
            core,
            stop,
            dispatcher: Some(dispatcher),
            workers,
        })
    }

    /// The server's socket address (register this with the switch).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statistics so far (same counters as the simulated server).
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.stats().served
    }

    /// Clones dropped so far (§3.4).
    pub fn clones_dropped(&self) -> u64 {
        self.stats().clones_dropped
    }

    /// Responses that reported an empty queue.
    pub fn idle_reports(&self) -> u64 {
        self.stats().idle_reports
    }

    /// Stops all threads and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        // The dispatcher owned the only Sender; once it exits, worker
        // recv() calls return Err and the workers drain out.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn dispatcher_loop(
    socket: UdpSocket,
    tx: Sender<Job>,
    _cfg: UdpServerConfig,
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
) {
    let mut buf = vec![0u8; 65_536];
    while !stop.load(Ordering::SeqCst) {
        let (len, _from) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let Ok((meta, op, _value)) = decode_packet(bytes::Bytes::copy_from_slice(&buf[..len]))
        else {
            continue;
        };
        if !meta.nc.is_request() {
            continue;
        }
        // §3.4 admission: the channel length is the queue the clone-drop
        // rule consults.
        if core.admit(meta.nc.clo, tx.len()) == AdmitDecision::DropClone {
            continue;
        }
        let _ = tx.send(Job { meta, op });
        core.note_queue_depth(tx.len());
    }
    // tx drops here → workers see a disconnected channel and exit.
}

fn worker_loop(rx: Receiver<Job>, cfg: UdpServerConfig, core: Arc<ServerCore>, sock: UdpSocket) {
    while let Ok(job) = rx.recv() {
        let value = cfg.executor.execute(&job.op);
        // Piggyback the queue state observed at response-send time (§3.4).
        let nc = core.response(&job.meta.nc, rx.len());
        let resp = PacketMeta::netclone_response(cfg.vip, job.meta.src_ip, nc, 0);
        let out = encode_packet(&resp, &job.op, &value);
        let _ = sock.send_to(&out, cfg.switch_addr);
    }
}
