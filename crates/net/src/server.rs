//! The real-socket worker server, sharded: N receive threads share one
//! UDP socket (kernel-fanned), and each owns its **own**
//! [`ServerCore`] — no dispatcher, no channel, no lock on the per-packet
//! path. Stats are merged on read via [`ServerStats::merge`].
//!
//! Requests are pulled in batches ([`RecvBatch`], `recvmmsg` on Linux):
//! for each request in a batch, the requests still queued *behind* it are
//! the FCFS "queue" the §3.4 clone-drop rule consults and the value
//! piggybacked on its response — the batch is the queue made visible. The
//! protocol logic itself — drop rule, response construction, accounting —
//! is [`netclone_hostcore::ServerCore`], shared verbatim with the
//! simulated server in `netclone-hosts`.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use netclone_hostcore::{AdmitDecision, ServerCore, ServerStats};
use netclone_proto::{Ipv4, PacketMeta, ServerId};

use crate::batch::{RecvBatch, MAX_DATAGRAM};
use crate::codec::{decode_packet_borrowed, encode_packet_into};
use crate::work::WorkExecutor;

/// Configuration of a real-socket server.
#[derive(Clone)]
pub struct UdpServerConfig {
    /// Server identity.
    pub sid: ServerId,
    /// Virtual address (registered with the soft switch).
    pub vip: Ipv4,
    /// Worker threads (each owns its own core; 0 is treated as 1).
    pub workers: usize,
    /// What a worker does with a request.
    pub executor: WorkExecutor,
    /// Where to send responses (the soft switch).
    pub switch_addr: SocketAddr,
}

/// A running server: per-worker cores behind one socket. Counters are
/// relaxed atomics inside each core and merged when read, so nothing on
/// the per-packet path contends.
pub struct ServerHandle {
    addr: SocketAddr,
    cores: Vec<Arc<ServerCore>>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds a server on `127.0.0.1` and starts its worker threads.
    pub fn spawn(cfg: UdpServerConfig) -> std::io::Result<ServerHandle> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        // All traffic flows through the switch, so a connected socket is
        // both a filter and what lets batched sends skip per-msg addresses.
        socket.connect(cfg.switch_addr)?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let n = cfg.workers.max(1);

        let mut cores = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for w in 0..n {
            let core = Arc::new(ServerCore::new(cfg.sid));
            cores.push(Arc::clone(&core));
            let cfg = cfg.clone();
            let sock = socket.try_clone()?;
            let stop = Arc::clone(&stop);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("server{}-worker{}", cfg.sid, w))
                    .spawn(move || worker_loop(sock, cfg, core, stop))?,
            );
        }

        Ok(ServerHandle {
            addr,
            cores,
            stop,
            workers,
        })
    }

    /// The server's socket address (register this with the switch).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statistics so far, merged across workers (same counters as the
    /// simulated server).
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for c in &self.cores {
            total.merge(&c.stats());
        }
        total
    }

    /// Per-worker statistics, in worker order.
    pub fn worker_stats(&self) -> Vec<ServerStats> {
        self.cores.iter().map(|c| c.stats()).collect()
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.stats().served
    }

    /// Clones dropped so far (§3.4).
    pub fn clones_dropped(&self) -> u64 {
        self.stats().clones_dropped
    }

    /// Responses that reported an empty queue.
    pub fn idle_reports(&self) -> u64 {
        self.stats().idle_reports
    }

    /// Stops all threads and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(
    sock: UdpSocket,
    cfg: UdpServerConfig,
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
) {
    let mut recv = RecvBatch::new();
    // One reusable response buffer: the per-packet path allocates nothing
    // (the synthetic executor returns no value bytes; KV values are the
    // store's to own). Growth past the prealloc is a counted event.
    let mut out = Vec::with_capacity(MAX_DATAGRAM);
    let mut out_cap = out.capacity();
    while !stop.load(Ordering::SeqCst) {
        let n = match recv.recv_timeout_then_drain(&sock) {
            Ok(n) => n,
            Err(_) => break,
        };
        for i in 0..n {
            let Ok((meta, op, _value)) = decode_packet_borrowed(recv.datagram(i)) else {
                continue;
            };
            if !meta.nc.is_request() {
                continue;
            }
            // §3.4 admission: the requests still waiting behind this one
            // in the batch are the FCFS queue the clone-drop rule sees.
            let backlog = n - 1 - i;
            if core.admit(meta.nc.clo, backlog) == AdmitDecision::DropClone {
                continue;
            }
            core.note_queue_depth(backlog);
            let value = cfg.executor.execute(&op);
            // Piggyback the queue state observed at response-send time.
            let nc = core.response(&meta.nc, backlog);
            let resp = PacketMeta::netclone_response(cfg.vip, meta.src_ip, nc, 0);
            encode_packet_into(&resp, &op, &value, &mut out);
            crate::batch::note_growth(&mut out_cap, out.capacity());
            let _ = sock.send(&out);
        }
    }
}
