//! The real-socket worker server, sharded: N receive threads share one
//! UDP socket (kernel-fanned), and each owns its **own**
//! [`ServerCore`] — no dispatcher, no channel, no lock on the per-packet
//! path. Stats are merged on read via [`ServerStats::merge`].
//!
//! Requests are pulled in batches ([`RecvBatch`], `recvmmsg` on Linux):
//! for each request in a batch, the requests still queued *behind* it are
//! the FCFS "queue" the §3.4 clone-drop rule consults and the value
//! piggybacked on its response — the batch is the queue made visible. The
//! protocol logic itself — drop rule, response construction, accounting —
//! is [`netclone_hostcore::ServerCore`], shared verbatim with the
//! simulated server in `netclone-hosts`.
//!
//! Workers run **supervised**: a panicking worker is caught, counted
//! ([`ServerHandle::restarts`]), and its loop re-entered — the core is an
//! `Arc` shared with the handle, so no counters are lost across a crash.
//! An optional [`FaultShim`] per worker perturbs datagrams between codec
//! and socket in both directions, deterministically from a seed.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use netclone_hostcore::{AdmitDecision, ServerCore, ServerStats};
use netclone_proto::{Ipv4, PacketMeta, ServerId};

use crate::batch::{RecvBatch, MAX_DATAGRAM};
use crate::codec::{decode_packet_borrowed, encode_packet_into};
use crate::shim::{FaultAction, FaultPlan, FaultShim};
use crate::work::WorkExecutor;

/// Configuration of a real-socket server.
#[derive(Clone)]
pub struct UdpServerConfig {
    /// Server identity.
    pub sid: ServerId,
    /// Virtual address (registered with the soft switch).
    pub vip: Ipv4,
    /// Worker threads (each owns its own core; 0 is treated as 1).
    pub workers: usize,
    /// What a worker does with a request.
    pub executor: WorkExecutor,
    /// Where to send responses (the soft switch).
    pub switch_addr: SocketAddr,
    /// Deterministic fault injection between codec and socket
    /// ([`FaultShim`]); `None` (or an empty plan) leaves the hot path
    /// untouched.
    pub faults: Option<FaultPlan>,
    /// Test/CI knob: worker `w` panics once its core has served at least
    /// `k` requests — once per server (a shared latch), so the supervised
    /// restart finishes the run. `None` in every production use.
    pub crash_worker: Option<(usize, u64)>,
}

impl UdpServerConfig {
    /// A plain config with no fault injection.
    pub fn new(
        sid: ServerId,
        vip: Ipv4,
        workers: usize,
        executor: WorkExecutor,
        switch_addr: SocketAddr,
    ) -> Self {
        UdpServerConfig {
            sid,
            vip,
            workers,
            executor,
            switch_addr,
            faults: None,
            crash_worker: None,
        }
    }
}

/// A running server: per-worker cores behind one socket. Counters are
/// relaxed atomics inside each core and merged when read, so nothing on
/// the per-packet path contends.
pub struct ServerHandle {
    addr: SocketAddr,
    cores: Vec<Arc<ServerCore>>,
    stop: Arc<AtomicBool>,
    restarts: Arc<AtomicU32>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds a server on `127.0.0.1` and starts its worker threads.
    pub fn spawn(cfg: UdpServerConfig) -> std::io::Result<ServerHandle> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        // All traffic flows through the switch, so a connected socket is
        // both a filter and what lets batched sends skip per-msg addresses.
        socket.connect(cfg.switch_addr)?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let restarts = Arc::new(AtomicU32::new(0));
        let crashed = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let n = cfg.workers.max(1);

        let mut cores = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for w in 0..n {
            let core = Arc::new(ServerCore::new(cfg.sid));
            cores.push(Arc::clone(&core));
            let cfg = cfg.clone();
            let sock = socket.try_clone()?;
            let stop = Arc::clone(&stop);
            let restarts = Arc::clone(&restarts);
            let crashed = Arc::clone(&crashed);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("server{}-worker{}", cfg.sid, w))
                    .spawn(move || {
                        supervise_worker(sock, cfg, core, w, epoch, stop, restarts, crashed)
                    })?,
            );
        }

        Ok(ServerHandle {
            addr,
            cores,
            stop,
            restarts,
            workers,
        })
    }

    /// The server's socket address (register this with the switch).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statistics so far, merged across workers (same counters as the
    /// simulated server).
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for c in &self.cores {
            total.merge(&c.stats());
        }
        total
    }

    /// Per-worker statistics, in worker order.
    pub fn worker_stats(&self) -> Vec<ServerStats> {
        self.cores.iter().map(|c| c.stats()).collect()
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.stats().served
    }

    /// Clones dropped so far (§3.4).
    pub fn clones_dropped(&self) -> u64 {
        self.stats().clones_dropped
    }

    /// Responses that reported an empty queue.
    pub fn idle_reports(&self) -> u64 {
        self.stats().idle_reports
    }

    /// Worker restarts after panics so far (0 on a healthy server).
    pub fn restarts(&self) -> u32 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Stops all threads and joins them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for w in self.workers.drain(..) {
            // The supervisor catches worker panics; a join failure here
            // would mean the supervisor itself died, which is a bug — but
            // it must not wedge shutdown, so the join result is dropped.
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Runs one worker's loop, re-entering it after a panic until told to
/// stop. The core lives in the handle (`Arc`), so a crash loses no
/// counters — only the in-flight batch.
#[allow(clippy::too_many_arguments)]
fn supervise_worker(
    sock: UdpSocket,
    cfg: UdpServerConfig,
    core: Arc<ServerCore>,
    windex: usize,
    epoch: Instant,
    stop: Arc<AtomicBool>,
    restarts: Arc<AtomicU32>,
    crashed: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(&sock, &cfg, &core, windex, epoch, &stop, &crashed)
        }));
        match attempt {
            Ok(()) => break,
            Err(_) => {
                restarts.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

fn worker_loop(
    sock: &UdpSocket,
    cfg: &UdpServerConfig,
    core: &ServerCore,
    windex: usize,
    epoch: Instant,
    stop: &AtomicBool,
    crashed: &AtomicBool,
) {
    let mut recv = RecvBatch::new();
    let mut shim = cfg
        .faults
        .as_ref()
        .filter(|p| !p.is_empty())
        .map(|p| FaultShim::for_worker(p, windex));
    // One reusable response buffer: the per-packet path allocates nothing
    // (the synthetic executor returns no value bytes; KV values are the
    // store's to own). Growth past the prealloc is a counted event.
    let mut out = Vec::with_capacity(MAX_DATAGRAM);
    let mut out_cap = out.capacity();
    while !stop.load(Ordering::SeqCst) {
        // Release delayed datagrams first: outbound responses go to the
        // socket, inbound requests are served like fresh arrivals (an
        // already-empty queue behind them).
        if shim.is_some() {
            let now = epoch.elapsed();
            while let Some(p) = shim.as_mut().and_then(|s| s.due_tx(now)) {
                let _ = sock.send(&p);
            }
            while let Some(p) = shim.as_mut().and_then(|s| s.due_rx(now)) {
                serve_one(
                    sock,
                    cfg,
                    core,
                    &mut shim,
                    epoch,
                    &p,
                    0,
                    &mut out,
                    &mut out_cap,
                );
            }
        }
        let n = match recv.recv_timeout_then_drain(sock) {
            Ok(n) => n,
            Err(_) => break,
        };
        for i in 0..n {
            if let Some((w, k)) = cfg.crash_worker {
                if w == windex && core.stats().served >= k && !crashed.swap(true, Ordering::SeqCst)
                {
                    panic!("injected server worker crash");
                }
            }
            let dg = recv.datagram(i);
            let action = shim
                .as_mut()
                .map_or(FaultAction::Deliver, |s| s.on_rx(epoch.elapsed(), dg));
            if matches!(action, FaultAction::Drop | FaultAction::Delay) {
                continue;
            }
            // §3.4 admission: the requests still waiting behind this one
            // in the batch are the FCFS queue the clone-drop rule sees.
            // (An injected duplicate re-presents the request; the drop
            // rule and the client-side filter absorb it, as they would a
            // network-duplicated datagram.)
            let backlog = n - 1 - i;
            let times = if action == FaultAction::Duplicate {
                2
            } else {
                1
            };
            for _ in 0..times {
                let dg = recv.datagram(i);
                serve_one(
                    sock,
                    cfg,
                    core,
                    &mut shim,
                    epoch,
                    dg,
                    backlog,
                    &mut out,
                    &mut out_cap,
                );
            }
        }
    }
}

/// Decodes, admits, executes, and answers one request datagram, passing
/// the response through the shim's Tx side.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    sock: &UdpSocket,
    cfg: &UdpServerConfig,
    core: &ServerCore,
    shim: &mut Option<FaultShim>,
    epoch: Instant,
    dg: &[u8],
    backlog: usize,
    out: &mut Vec<u8>,
    out_cap: &mut usize,
) {
    let Ok((meta, op, _value)) = decode_packet_borrowed(dg) else {
        return;
    };
    if !meta.nc.is_request() {
        return;
    }
    if core.admit(meta.nc.clo, backlog) == AdmitDecision::DropClone {
        return;
    }
    core.note_queue_depth(backlog);
    let value = cfg.executor.execute(&op);
    // Piggyback the queue state observed at response-send time.
    let nc = core.response(&meta.nc, backlog);
    let resp = PacketMeta::netclone_response(cfg.vip, meta.src_ip, nc, 0);
    encode_packet_into(&resp, &op, &value, out);
    crate::batch::note_growth(out_cap, out.capacity());
    let action = shim
        .as_mut()
        .map_or(FaultAction::Deliver, |s| s.on_tx(epoch.elapsed(), out));
    match action {
        FaultAction::Drop | FaultAction::Delay => {}
        FaultAction::Deliver => {
            let _ = sock.send(out);
        }
        FaultAction::Duplicate => {
            let _ = sock.send(out);
            let _ = sock.send(out);
        }
    }
}
