//! The soft switch: a switch engine behind a UDP socket.
//!
//! One thread receives datagrams, decodes the virtual-L3 preheader, runs
//! the switch program — any [`netclone_core::SwitchEngine`]; by default
//! the genuine `NetCloneSwitch` (cloning, state tracking, filtering —
//! recirculation happens inside the program, exactly like the inline
//! model the simulator uses) — and transmits every emission to the socket
//! address registered for its egress port. Because both frontends drive
//! the same trait object, the soft switch and the DES simulator execute
//! the identical program (asserted by `tests/equivalence.rs` at the
//! workspace root).

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use netclone_asic::{EmissionSink, PortId};
use netclone_core::{NetCloneConfig, NetCloneSwitch, SwitchCounters, SwitchEngine};
use netclone_proto::pcap::PcapWriter;
use netclone_proto::{Ipv4, ServerId};
use parking_lot::Mutex;

use crate::batch::{RecvBatch, MAX_DATAGRAM};
use crate::codec::{decode_packet_borrowed, encode_packet_into};

/// Shared state between the switch thread and the control plane.
struct Shared {
    program: Box<dyn SwitchEngine>,
    /// Egress port → where to send the datagram.
    port_map: Vec<Option<SocketAddr>>,
}

/// A running soft switch.
pub struct SoftSwitch {
    addr: SocketAddr,
    shared: Arc<Mutex<Shared>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// A cheap handle for registering endpoints and reading counters.
#[derive(Clone)]
pub struct SwitchHandle {
    addr: SocketAddr,
    shared: Arc<Mutex<Shared>>,
}

impl SoftSwitch {
    /// Binds a soft switch running the NetClone program on `127.0.0.1`
    /// (ephemeral port) and starts its forwarding thread.
    pub fn spawn(cfg: NetCloneConfig) -> std::io::Result<SoftSwitch> {
        Self::spawn_inner(Box::new(NetCloneSwitch::new(cfg)), None)
    }

    /// Binds a soft switch running an arbitrary [`SwitchEngine`] — the
    /// same trait object the DES simulator drives.
    pub fn spawn_engine(engine: Box<dyn SwitchEngine>) -> std::io::Result<SoftSwitch> {
        Self::spawn_inner(engine, None)
    }

    /// Like [`SoftSwitch::spawn`], with a pcap debug tap: every packet the
    /// switch emits is also written (as `IPv4/UDP/NetClone`, LINKTYPE_RAW)
    /// to `pcap_path` for Wireshark/tcpdump inspection.
    pub fn spawn_with_tap<P: AsRef<std::path::Path>>(
        cfg: NetCloneConfig,
        pcap_path: P,
    ) -> std::io::Result<SoftSwitch> {
        let tap = PcapWriter::create(pcap_path)?;
        Self::spawn_inner(Box::new(NetCloneSwitch::new(cfg)), Some(tap))
    }

    fn spawn_inner(
        engine: Box<dyn SwitchEngine>,
        tap: Option<PcapWriter>,
    ) -> std::io::Result<SoftSwitch> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let addr = socket.local_addr()?;
        let shared = Arc::new(Mutex::new(Shared {
            program: engine,
            port_map: vec![None; 512],
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("soft-switch".into())
                .spawn(move || switch_loop(socket, shared, stop, tap))?
        };
        Ok(SoftSwitch {
            addr,
            shared,
            stop,
            thread: Some(thread),
        })
    }

    /// The switch's socket address (endpoints send here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable control-plane handle.
    pub fn handle(&self) -> SwitchHandle {
        SwitchHandle {
            addr: self.addr,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops the forwarding thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SoftSwitch {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl SwitchHandle {
    /// The switch's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a worker server: virtual address + socket address.
    pub fn register_server(
        &self,
        sid: ServerId,
        vip: Ipv4,
        sock: SocketAddr,
    ) -> Result<(), String> {
        let mut s = self.shared.lock();
        let port: PortId = 10 + sid;
        s.program
            .register_server(sid, vip, port)
            .map_err(|e| e.to_string())?;
        s.port_map[port as usize] = Some(sock);
        Ok(())
    }

    /// Maps an egress port to a socket address without touching the
    /// engine's tables — for engines that were programmed *before*
    /// [`SoftSwitch::spawn_engine`] (e.g. one built by
    /// `netclone-cluster`'s scenario builder, whose port convention is
    /// the same `10+sid` / `100+cid` used here).
    pub fn map_port(&self, port: PortId, sock: SocketAddr) -> Result<(), String> {
        let mut s = self.shared.lock();
        let slot = s
            .port_map
            .get_mut(port as usize)
            .ok_or_else(|| format!("port {port} outside the switch's port space"))?;
        *slot = Some(sock);
        Ok(())
    }

    /// Removes a failed server (§3.6).
    pub fn remove_server(&self, sid: ServerId) -> Result<(), String> {
        let mut s = self.shared.lock();
        s.program
            .deregister_server(sid)
            .map_err(|e| e.to_string())?;
        let port: PortId = 10 + sid;
        s.port_map[port as usize] = None;
        Ok(())
    }

    /// Registers a client endpoint.
    pub fn register_client(&self, cid: u16, vip: Ipv4, sock: SocketAddr) -> Result<(), String> {
        let mut s = self.shared.lock();
        let port: PortId = 100 + cid;
        s.program
            .register_client(vip, port)
            .map_err(|e| e.to_string())?;
        s.port_map[port as usize] = Some(sock);
        Ok(())
    }

    /// Number of installed groups (clients need this to draw `GRP`).
    pub fn num_groups(&self) -> u16 {
        self.shared.lock().program.num_groups()
    }

    /// Data-plane counters snapshot.
    pub fn counters(&self) -> SwitchCounters {
        self.shared.lock().program.counters()
    }

    /// §3.6 power-cycle: clears soft state.
    pub fn reset_soft_state(&self) {
        self.shared.lock().program.reset_soft_state();
    }
}

fn now_ns() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn switch_loop(
    socket: UdpSocket,
    shared: Arc<Mutex<Shared>>,
    stop: Arc<AtomicBool>,
    mut tap: Option<PcapWriter>,
) {
    // Datagrams are pulled in batches (`recvmmsg` on Linux) and decoded
    // straight out of the receive buffers; emissions re-encode into one
    // reusable buffer. Together with the `EmissionSink` contract from
    // `netclone_asic::dataplane`, the per-datagram path allocates nothing
    // and the pipeline lock is taken once per batch, not once per packet.
    let mut batch = RecvBatch::new();
    let mut out = Vec::with_capacity(MAX_DATAGRAM);
    let mut out_cap = out.capacity();
    let mut sink = EmissionSink::new();
    while !stop.load(Ordering::SeqCst) {
        let n = match batch.recv_timeout_then_drain(&socket) {
            Ok(n) => n,
            Err(_) => break,
        };
        if n == 0 {
            continue;
        }
        let now = now_ns();
        let mut s = shared.lock();
        for i in 0..n {
            let Ok((meta, op, value)) = decode_packet_borrowed(batch.datagram(i)) else {
                continue; // malformed datagrams are dropped, never crash the fabric
            };
            // Ingress port 0: the loopback fabric cannot tell us which wire
            // the packet came in on, and the program only needs the
            // recirculation port to be distinguishable (recirculation is
            // internal here).
            s.program.process(meta, 0, now, &mut sink);
            for e in sink.drain() {
                if let Some(Some(dst)) = s.port_map.get(e.port as usize) {
                    encode_packet_into(&e.pkt, &op, value, &mut out);
                    crate::batch::note_growth(&mut out_cap, out.capacity());
                    let _ = socket.send_to(&out, dst);
                    if let Some(w) = tap.as_mut() {
                        // The tap must never break forwarding: ignore IO
                        // errors.
                        let ip = netclone_proto::l3::encode_ip_packet(&e.pkt, e.port, &op);
                        let _ = w.record(now, &ip);
                    }
                }
            }
        }
    }
}
