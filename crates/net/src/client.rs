//! The real-socket client: a blocking UDP driver over the shared
//! [`ClientCore`] protocol state machine.
//!
//! Addressing (random group + filter-table index, destination left to the
//! switch), duplicate filtering, latency measurement, and clone-win /
//! redundant / lost accounting all live in
//! [`netclone_hostcore::ClientCore`] — this type only moves datagrams and
//! converts wall-clock time to the core's explicit nanoseconds.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use netclone_hostcore::{ClientCore, ClientMode, ClientStats, RxEvent};
use netclone_proto::{ClientId, Ipv4, RpcOp, ServerState};
use netclone_stats::LatencyHistogram;

use crate::batch::DeadlineTimeout;
use crate::codec::{decode_packet_borrowed, encode_packet};

/// Errors from a blocking call.
#[derive(Debug, PartialEq, Eq)]
pub enum CallError {
    /// No response within the timeout.
    Timeout,
    /// Socket error (description).
    Io(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Timeout => write!(f, "request timed out"),
            CallError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

/// One response as the client application sees it.
#[derive(Debug, Clone)]
pub struct CallReply {
    /// Which server answered.
    pub sid: u16,
    /// The piggybacked server state.
    pub state: ServerState,
    /// Whether the winning response came from the clone (`CLO=2`).
    pub from_clone: bool,
    /// The response value bytes.
    pub value: Vec<u8>,
    /// Measured round-trip latency.
    pub latency: Duration,
}

/// A real-socket NetClone client.
pub struct UdpClient {
    core: ClientCore,
    socket: UdpSocket,
    switch_addr: SocketAddr,
    epoch: Instant,
}

impl UdpClient {
    /// Binds a client on `127.0.0.1`. Register the returned socket address
    /// with the switch before calling.
    pub fn bind(
        cid: ClientId,
        switch_addr: SocketAddr,
        num_groups: u16,
        num_filter_tables: u8,
        seed: u64,
    ) -> std::io::Result<UdpClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(UdpClient {
            core: ClientCore::new(
                cid,
                ClientMode::NetClone {
                    num_groups,
                    num_filter_tables,
                },
                seed,
            ),
            socket,
            switch_addr,
            epoch: Instant::now(),
        })
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The client's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The client's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.core.ip()
    }

    /// Latency histogram of completed calls.
    pub fn latencies(&self) -> &LatencyHistogram {
        self.core.latencies()
    }

    /// Statistics so far (same counters as every other frontend).
    pub fn stats(&self) -> ClientStats {
        self.core.stats()
    }

    /// Redundant responses observed (should be 0 with filtering on).
    pub fn redundant(&self) -> u64 {
        self.core.stats().redundant
    }

    /// Completed calls.
    pub fn completed(&self) -> u64 {
        self.core.stats().completed
    }

    /// Calls abandoned after their timeout.
    pub fn lost(&self) -> u64 {
        self.core.stats().lost
    }

    /// Completed calls won by the switch-generated clone.
    pub fn clone_wins(&self) -> u64 {
        self.core.stats().clone_wins
    }

    /// Issues one request and blocks for its first response.
    ///
    /// Late/redundant datagrams from *earlier* requests encountered while
    /// waiting are counted and discarded, mirroring the client-side
    /// redundancy handling the paper requires of RPC frameworks (§3.7).
    pub fn call(&mut self, op: RpcOp, timeout: Duration) -> Result<CallReply, CallError> {
        let seq = self.core.generate(op, self.now_ns());
        let meta = self.core.poll().expect("NetClone mode emits one packet");
        debug_assert!(self.core.poll().is_none());
        let datagram = encode_packet(&meta, &op, &[]);
        let start = Instant::now();
        // Every early return must abandon `seq`, or the entry would linger
        // in the outstanding map and let a stray late datagram complete it
        // during a *later* call with a nonsense latency.
        let fail = |core: &mut ClientCore, e: CallError| {
            core.abandon(seq);
            Err(e)
        };
        if let Err(e) = self.socket.send_to(&datagram, self.switch_addr) {
            return fail(&mut self.core, CallError::Io(e.to_string()));
        }

        let mut buf = vec![0u8; 65_536];
        // Re-arming the socket timeout with the exact remaining time was a
        // syscall per iteration; the bucketed helper only re-arms when the
        // remaining-deadline bucket changes, so a wake can come before the
        // true deadline — the `elapsed >= timeout` check above the recv is
        // what actually enforces it.
        let mut arm = DeadlineTimeout::new();
        loop {
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return fail(&mut self.core, CallError::Timeout);
            }
            if let Err(e) = arm.arm(&self.socket, timeout - elapsed) {
                return fail(&mut self.core, CallError::Io(e.to_string()));
            }
            let len = match self.socket.recv(&mut buf) {
                Ok(len) => len,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return fail(&mut self.core, CallError::Io(e.to_string())),
            };
            let Ok((m, _op, value)) = decode_packet_borrowed(&buf[..len]) else {
                continue;
            };
            match self.core.on_packet(&m.nc, self.now_ns()) {
                RxEvent::Completed {
                    latency_ns,
                    from_clone,
                } if m.nc.client_seq == seq => {
                    return Ok(CallReply {
                        sid: m.nc.sid,
                        state: m.nc.state,
                        from_clone,
                        value: value.to_vec(),
                        latency: Duration::from_nanos(latency_ns),
                    });
                }
                // Responses to other (abandoned/stale) sequence numbers and
                // anything the core classified as redundant or foreign are
                // already accounted; keep waiting for ours.
                _ => continue,
            }
        }
    }

    /// Drains any late datagrams sitting in the socket buffer, counting
    /// responses to this client as redundant. Returns how many were
    /// drained.
    pub fn drain_late_responses(&mut self) -> u64 {
        let mut buf = [0u8; 65_536];
        let mut n = 0;
        let _ = self.socket.set_read_timeout(Some(Duration::from_millis(5)));
        while let Ok(len) = self.socket.recv(&mut buf) {
            if let Ok((m, _op, _value)) = decode_packet_borrowed(&buf[..len]) {
                if self.core.on_packet(&m.nc, self.now_ns()) != RxEvent::Ignored {
                    n += 1;
                }
            }
        }
        n
    }
}
