//! The real-socket client: NetClone-style addressing (random group +
//! filter-table index, destination left to the switch), latency
//! measurement, and redundant-response accounting.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use bytes::Bytes;
use netclone_proto::{ClientId, Ipv4, NetCloneHdr, PacketMeta, RpcOp, ServerState};
use netclone_stats::LatencyHistogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{decode_packet, encode_packet};

/// Errors from a blocking call.
#[derive(Debug, PartialEq, Eq)]
pub enum CallError {
    /// No response within the timeout.
    Timeout,
    /// Socket error (description).
    Io(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Timeout => write!(f, "request timed out"),
            CallError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for CallError {}

/// One response as the client application sees it.
#[derive(Debug, Clone)]
pub struct CallReply {
    /// Which server answered.
    pub sid: u16,
    /// The piggybacked server state.
    pub state: ServerState,
    /// Whether the winning response came from the clone (`CLO=2`).
    pub from_clone: bool,
    /// The response value bytes.
    pub value: Vec<u8>,
    /// Measured round-trip latency.
    pub latency: Duration,
}

/// A real-socket NetClone client.
pub struct UdpClient {
    cid: ClientId,
    vip: Ipv4,
    socket: UdpSocket,
    switch_addr: SocketAddr,
    num_groups: u16,
    num_filter_tables: u8,
    rng: StdRng,
    next_seq: u32,
    latencies: LatencyHistogram,
    redundant: u64,
    completed: u64,
}

impl UdpClient {
    /// Binds a client on `127.0.0.1`. Register the returned socket address
    /// with the switch before calling.
    pub fn bind(
        cid: ClientId,
        switch_addr: SocketAddr,
        num_groups: u16,
        num_filter_tables: u8,
        seed: u64,
    ) -> std::io::Result<UdpClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        Ok(UdpClient {
            cid,
            vip: Ipv4::client(cid),
            socket,
            switch_addr,
            num_groups,
            num_filter_tables,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            latencies: LatencyHistogram::new(),
            redundant: 0,
            completed: 0,
        })
    }

    /// The client's socket address.
    pub fn addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The client's virtual address.
    pub fn vip(&self) -> Ipv4 {
        self.vip
    }

    /// Latency histogram of completed calls.
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }

    /// Redundant responses observed (should be 0 with filtering on).
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Completed calls.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Issues one request and blocks for its first response.
    ///
    /// Late/redundant datagrams from *earlier* requests encountered while
    /// waiting are counted and discarded, mirroring the client-side
    /// redundancy handling the paper requires of RPC frameworks (§3.7).
    pub fn call(&mut self, op: RpcOp, timeout: Duration) -> Result<CallReply, CallError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let grp = self.rng.random_range(0..self.num_groups.max(1));
        let idx = self.rng.random_range(0..self.num_filter_tables.max(1));
        let mut nc = NetCloneHdr::request(grp, idx, self.cid, seq);
        if !op.is_cloneable() {
            nc.state = ServerState(1); // §5.5: writes are not cloned
        }
        let meta = PacketMeta::netclone_request(self.vip, nc, 0);
        let datagram = encode_packet(&meta, &op, &[]);
        let start = Instant::now();
        self.socket
            .send_to(&datagram, self.switch_addr)
            .map_err(|e| CallError::Io(e.to_string()))?;

        let mut buf = vec![0u8; 65_536];
        loop {
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return Err(CallError::Timeout);
            }
            self.socket
                .set_read_timeout(Some(timeout - elapsed))
                .map_err(|e| CallError::Io(e.to_string()))?;
            let len = match self.socket.recv(&mut buf) {
                Ok(len) => len,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(CallError::Timeout)
                }
                Err(e) => return Err(CallError::Io(e.to_string())),
            };
            let Ok((m, _op, value)) = decode_packet(Bytes::copy_from_slice(&buf[..len])) else {
                continue;
            };
            if !m.nc.is_response() {
                continue;
            }
            if m.nc.client_seq != seq || m.nc.client_id != self.cid {
                self.redundant += 1; // a slower response that escaped the filter
                continue;
            }
            let latency = start.elapsed();
            self.latencies.record(latency.as_nanos() as u64);
            self.completed += 1;
            return Ok(CallReply {
                sid: m.nc.sid,
                state: m.nc.state,
                from_clone: m.nc.clo == netclone_proto::CloneStatus::Clone,
                value: value.to_vec(),
                latency,
            });
        }
    }

    /// Drains any late datagrams sitting in the socket buffer, counting
    /// them as redundant. Returns how many were drained.
    pub fn drain_late_responses(&mut self) -> u64 {
        let mut buf = [0u8; 65_536];
        let mut n = 0;
        let _ = self.socket.set_read_timeout(Some(Duration::from_millis(5)));
        while let Ok(len) = self.socket.recv(&mut buf) {
            if decode_packet(Bytes::copy_from_slice(&buf[..len])).is_ok() {
                self.redundant += 1;
                n += 1;
            }
        }
        n
    }
}
