//! Deterministic fault injection for the real-socket frontend.
//!
//! A [`FaultShim`] sits between the codec and the socket on a worker's
//! send and receive paths and perturbs datagrams — drop, delay,
//! duplicate — inside configured time windows, from a seeded RNG. Every
//! worker owns its own shim (same sharding discipline as the cores), so
//! the per-packet path stays lock-free and the draw sequence of one
//! worker cannot shift another's: given the same seed, windows, and
//! packet sequence, the shim makes the same decisions.
//!
//! The shim is I/O-free on purpose: it returns a [`FaultAction`] verdict
//! and parks delayed payloads internally; the worker loop decides what a
//! verdict means for its batching (skip the commit, commit twice, hand
//! the payload back via [`FaultShim::due_tx`]/[`FaultShim::due_rx`] when the hold expires). This
//! mirrors the DES frontend, where the same fault classes are scheduled
//! as control events — the real-socket path injects them at the socket
//! boundary instead, which is where a real network would.

use std::collections::VecDeque;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which side of the socket a window applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDirection {
    /// Outbound datagrams only (after encode, before send).
    Tx,
    /// Inbound datagrams only (after receive, before decode).
    Rx,
    /// Both directions.
    Both,
}

impl FaultDirection {
    fn applies_tx(self) -> bool {
        matches!(self, FaultDirection::Tx | FaultDirection::Both)
    }

    fn applies_rx(self) -> bool {
        matches!(self, FaultDirection::Rx | FaultDirection::Both)
    }
}

/// One timed fault window: inside `[from, until)` each matching datagram
/// is independently dropped with `drop_prob`, else duplicated with
/// `dup_prob`, else delayed by `delay` (when non-zero).
#[derive(Clone, Debug)]
pub struct FaultWindow {
    /// Window start, elapsed time since the run's epoch.
    pub from: Duration,
    /// Window end (exclusive).
    pub until: Duration,
    /// Which direction the window perturbs.
    pub direction: FaultDirection,
    /// Probability a matching datagram is dropped.
    pub drop_prob: f64,
    /// Probability a surviving datagram is sent twice.
    pub dup_prob: f64,
    /// Hold applied to surviving, non-duplicated datagrams
    /// (`Duration::ZERO` delivers immediately).
    pub delay: Duration,
}

impl FaultWindow {
    fn active(&self, now: Duration) -> bool {
        now >= self.from && now < self.until
    }
}

/// The shim's verdict for one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass through untouched.
    Deliver,
    /// Discard silently.
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Parked inside the shim; poll [`FaultShim::due_tx`]/[`FaultShim::due_rx`] to release it.
    Delay,
}

/// Fault plan of one endpoint: a seed plus its windows. Workers derive
/// per-worker shims from this ([`FaultShim::for_worker`]).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Base RNG seed; worker `w` draws from a splitmix64-decorrelated
    /// stream so the plan is deterministic per worker, not per run.
    pub seed: u64,
    /// The timed windows, checked in order (first active one wins).
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// True when no window is configured (the shim short-circuits).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// A per-worker deterministic fault injector (see the module docs).
pub struct FaultShim {
    windows: Vec<FaultWindow>,
    rng: StdRng,
    /// Delayed payloads with their release times, kept per direction (a
    /// released Tx payload goes to the socket, a released Rx payload to
    /// the decoder). Mostly release-ordered — every delay inside one
    /// window is constant and `now` is monotone per worker — but windows
    /// with different delays can interleave, so release scans for the
    /// first due entry rather than trusting the front.
    held_tx: VecDeque<(Duration, Vec<u8>)>,
    held_rx: VecDeque<(Duration, Vec<u8>)>,
}

impl FaultShim {
    /// Builds a shim drawing from `seed` with the given windows.
    pub fn new(seed: u64, windows: Vec<FaultWindow>) -> Self {
        FaultShim {
            windows,
            rng: StdRng::seed_from_u64(seed),
            held_tx: VecDeque::new(),
            held_rx: VecDeque::new(),
        }
    }

    /// Builds worker `w`'s shim for a shared plan (decorrelated stream,
    /// identical windows).
    pub fn for_worker(plan: &FaultPlan, w: usize) -> Self {
        let seed = if w == 0 {
            plan.seed
        } else {
            crate::openloop::splitmix64(plan.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        FaultShim::new(seed, plan.windows.clone())
    }

    /// Verdict plus, for [`FaultAction::Delay`], the delay of the window
    /// that produced it — the same direction-filtered window selection for
    /// both, so a Tx-only window can never set the hold of an Rx verdict
    /// (or vice versa).
    fn decide(&mut self, now: Duration, tx: bool) -> (FaultAction, Duration) {
        let Some(w) = self.windows.iter().find(|w| {
            w.active(now)
                && (if tx {
                    w.direction.applies_tx()
                } else {
                    w.direction.applies_rx()
                })
        }) else {
            return (FaultAction::Deliver, Duration::ZERO);
        };
        // One draw per decision point, taken unconditionally, so a
        // window's packet count alone determines the stream position.
        let (d1, d2): (f64, f64) = (self.rng.random(), self.rng.random());
        if d1 < w.drop_prob {
            (FaultAction::Drop, Duration::ZERO)
        } else if d2 < w.dup_prob {
            (FaultAction::Duplicate, Duration::ZERO)
        } else if w.delay > Duration::ZERO {
            (FaultAction::Delay, w.delay)
        } else {
            (FaultAction::Deliver, Duration::ZERO)
        }
    }

    /// Verdict for an outbound datagram. On [`FaultAction::Delay`] the
    /// shim keeps a copy; release it via [`Self::due_tx`].
    pub fn on_tx(&mut self, now: Duration, payload: &[u8]) -> FaultAction {
        let (action, delay) = self.decide(now, true);
        if action == FaultAction::Delay {
            self.held_tx.push_back((now + delay, payload.to_vec()));
        }
        action
    }

    /// Verdict for an inbound datagram; a delayed payload is released via
    /// [`Self::due_rx`] instead.
    pub fn on_rx(&mut self, now: Duration, payload: &[u8]) -> FaultAction {
        let (action, delay) = self.decide(now, false);
        if action == FaultAction::Delay {
            self.held_rx.push_back((now + delay, payload.to_vec()));
        }
        action
    }

    /// Releases the next delayed outbound payload whose hold has expired,
    /// if any. Call in a loop each iteration of the worker loop.
    pub fn due_tx(&mut self, now: Duration) -> Option<Vec<u8>> {
        Self::pop_due(&mut self.held_tx, now)
    }

    /// Releases the next delayed inbound payload whose hold has expired.
    pub fn due_rx(&mut self, now: Duration) -> Option<Vec<u8>> {
        Self::pop_due(&mut self.held_rx, now)
    }

    /// Pops the first due entry anywhere in the queue. Within one window
    /// the queue is release-ordered (constant delay, monotone `now`), so
    /// this is an O(1) front check in the steady state; the scan matters
    /// only across adjacent windows with different delays, where a
    /// short-hold payload can be parked behind a long-hold one and must
    /// not be held for the longer delay.
    fn pop_due(q: &mut VecDeque<(Duration, Vec<u8>)>, now: Duration) -> Option<Vec<u8>> {
        let i = q.iter().position(|(at, _)| *at <= now)?;
        q.remove(i).map(|(_, p)| p)
    }

    /// Payloads still parked in either direction (diagnostics / final
    /// drain decisions).
    pub fn held(&self) -> usize {
        self.held_tx.len() + self.held_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(drop: f64, dup: f64, delay_ms: u64) -> FaultWindow {
        FaultWindow {
            from: Duration::from_millis(10),
            until: Duration::from_millis(20),
            direction: FaultDirection::Both,
            drop_prob: drop,
            dup_prob: dup,
            delay: Duration::from_millis(delay_ms),
        }
    }

    #[test]
    fn outside_a_window_everything_delivers() {
        let mut s = FaultShim::new(1, vec![window(1.0, 1.0, 5)]);
        assert_eq!(
            s.on_tx(Duration::from_millis(5), b"x"),
            FaultAction::Deliver
        );
        assert_eq!(
            s.on_rx(Duration::from_millis(25), b"x"),
            FaultAction::Deliver
        );
    }

    #[test]
    fn certain_drop_drops_and_certain_dup_duplicates() {
        let mut s = FaultShim::new(1, vec![window(1.0, 0.0, 0)]);
        assert_eq!(s.on_tx(Duration::from_millis(15), b"x"), FaultAction::Drop);
        let mut s = FaultShim::new(1, vec![window(0.0, 1.0, 0)]);
        assert_eq!(
            s.on_rx(Duration::from_millis(15), b"x"),
            FaultAction::Duplicate
        );
    }

    #[test]
    fn delay_parks_and_releases_in_order_per_direction() {
        let mut s = FaultShim::new(1, vec![window(0.0, 0.0, 5)]);
        assert_eq!(s.on_tx(Duration::from_millis(11), b"a"), FaultAction::Delay);
        assert_eq!(s.on_rx(Duration::from_millis(11), b"r"), FaultAction::Delay);
        assert_eq!(s.on_tx(Duration::from_millis(12), b"b"), FaultAction::Delay);
        assert_eq!(s.held(), 3);
        assert!(s.due_tx(Duration::from_millis(15)).is_none());
        assert_eq!(
            s.due_tx(Duration::from_millis(16)).as_deref(),
            Some(&b"a"[..])
        );
        assert!(s.due_tx(Duration::from_millis(16)).is_none());
        assert_eq!(
            s.due_rx(Duration::from_millis(16)).as_deref(),
            Some(&b"r"[..])
        );
        assert_eq!(
            s.due_tx(Duration::from_millis(17)).as_deref(),
            Some(&b"b"[..])
        );
        assert_eq!(s.held(), 0);
    }

    #[test]
    fn delay_comes_from_the_window_that_matched_the_direction() {
        // A Tx-only long-hold window ordered before an Rx short-hold one:
        // the Rx verdict must take the Rx window's 2 ms delay, not be held
        // for the Tx window's 10 ms.
        let mut tx_w = window(0.0, 0.0, 10);
        tx_w.direction = FaultDirection::Tx;
        let mut rx_w = window(0.0, 0.0, 2);
        rx_w.direction = FaultDirection::Rx;
        let mut s = FaultShim::new(1, vec![tx_w, rx_w]);
        assert_eq!(s.on_rx(Duration::from_millis(11), b"r"), FaultAction::Delay);
        assert_eq!(
            s.due_rx(Duration::from_millis(13)).as_deref(),
            Some(&b"r"[..])
        );
        // And the Tx verdict still takes the Tx window's 10 ms.
        assert_eq!(s.on_tx(Duration::from_millis(11), b"t"), FaultAction::Delay);
        assert!(s.due_tx(Duration::from_millis(13)).is_none());
        assert_eq!(
            s.due_tx(Duration::from_millis(21)).as_deref(),
            Some(&b"t"[..])
        );
    }

    #[test]
    fn short_hold_is_not_stuck_behind_long_hold_across_windows() {
        // Adjacent windows with different delays: a payload held 10 ms in
        // the first window parks ahead of one held 1 ms in the second, but
        // the short hold must still release on its own schedule.
        let long = FaultWindow {
            from: Duration::from_millis(10),
            until: Duration::from_millis(20),
            direction: FaultDirection::Both,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay: Duration::from_millis(10),
        };
        let short = FaultWindow {
            from: Duration::from_millis(20),
            until: Duration::from_millis(30),
            direction: FaultDirection::Both,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay: Duration::from_millis(1),
        };
        let mut s = FaultShim::new(1, vec![long, short]);
        assert_eq!(s.on_tx(Duration::from_millis(19), b"L"), FaultAction::Delay); // due 29 ms
        assert_eq!(s.on_tx(Duration::from_millis(21), b"S"), FaultAction::Delay); // due 22 ms
        assert_eq!(
            s.due_tx(Duration::from_millis(23)).as_deref(),
            Some(&b"S"[..])
        );
        assert!(s.due_tx(Duration::from_millis(23)).is_none());
        assert_eq!(
            s.due_tx(Duration::from_millis(29)).as_deref(),
            Some(&b"L"[..])
        );
        assert_eq!(s.held(), 0);
    }

    #[test]
    fn direction_gates_the_verdict() {
        let mut w = window(1.0, 0.0, 0);
        w.direction = FaultDirection::Tx;
        let mut s = FaultShim::new(1, vec![w]);
        assert_eq!(
            s.on_rx(Duration::from_millis(15), b"x"),
            FaultAction::Deliver
        );
        assert_eq!(s.on_tx(Duration::from_millis(15), b"x"), FaultAction::Drop);
    }

    #[test]
    fn same_seed_same_decisions() {
        let windows = vec![window(0.4, 0.4, 1)];
        let mut a = FaultShim::new(7, windows.clone());
        let mut b = FaultShim::new(7, windows);
        for i in 0..200u64 {
            let t = Duration::from_millis(10) + Duration::from_micros(i * 40);
            assert_eq!(a.on_tx(t, b"x"), b.on_tx(t, b"x"));
        }
    }
}
