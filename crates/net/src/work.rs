//! Server-side work execution: what a worker thread actually does with a
//! request in the real runtime.

use std::sync::Arc;
use std::time::{Duration, Instant};

use netclone_kvstore::{store::ExecResult, KvStore};
use netclone_proto::RpcOp;
use parking_lot::RwLock;

/// Executes RPC operations on a worker thread.
#[derive(Clone)]
pub enum WorkExecutor {
    /// Synthetic dummy RPC: busy-spin for the request's class duration
    /// (like the paper's synthetic worker, §5.1.2).
    Synthetic,
    /// Serve from a shared in-memory KV store (§5.5).
    Kv(Arc<RwLock<KvStore>>),
}

impl WorkExecutor {
    /// Builds a KV executor over a freshly populated store.
    pub fn kv(objects: usize, value_len: usize) -> Self {
        WorkExecutor::Kv(Arc::new(RwLock::new(KvStore::populate(objects, value_len))))
    }

    /// Runs one operation, returning the response value bytes.
    pub fn execute(&self, op: &RpcOp) -> Vec<u8> {
        match self {
            WorkExecutor::Synthetic => {
                if let RpcOp::Echo { class_ns } = op {
                    spin_for(Duration::from_nanos(*class_ns));
                }
                Vec::new()
            }
            WorkExecutor::Kv(store) => match op {
                RpcOp::Put { .. } => {
                    let mut s = store.write();
                    match s.execute(op) {
                        ExecResult::Stored => b"STORED".to_vec(),
                        _ => b"MISS".to_vec(),
                    }
                }
                _ => {
                    let mut s = store.write();
                    match s.execute(op) {
                        ExecResult::Value(v) => v,
                        ExecResult::Range { bytes, .. } => bytes,
                        ExecResult::NoStoreWork => Vec::new(),
                        _ => b"MISS".to_vec(),
                    }
                }
            },
        }
    }
}

/// Busy-waits for approximately `d` (spin, not sleep: microsecond-scale
/// service times are far below timer resolution).
fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::KvKey;

    #[test]
    fn synthetic_spins_for_the_class() {
        let w = WorkExecutor::Synthetic;
        let start = Instant::now();
        let out = w.execute(&RpcOp::Echo { class_ns: 200_000 });
        assert!(out.is_empty());
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn kv_executor_serves_store_content() {
        let w = WorkExecutor::kv(100, 16);
        let v = w.execute(&RpcOp::Get {
            key: KvKey::from_index(5),
        });
        assert_eq!(v.len(), 16);
        let scan = w.execute(&RpcOp::Scan {
            key: KvKey::from_index(0),
            count: 10,
        });
        assert_eq!(scan.len(), 160);
        let stored = w.execute(&RpcOp::Put {
            key: KvKey::from_index(1),
            value_len: 8,
        });
        assert_eq!(stored, b"STORED");
    }

    #[test]
    fn kv_misses_are_reported() {
        let w = WorkExecutor::kv(10, 16);
        let v = w.execute(&RpcOp::Get {
            key: KvKey::from_index(999),
        });
        assert_eq!(v, b"MISS");
    }
}
