//! One-call local testbed: a soft switch plus N servers on loopback,
//! ready for clients — the real-socket analogue of the paper's rack.

use std::net::SocketAddr;
use std::time::Duration;

use netclone_core::NetCloneConfig;
use netclone_proto::Ipv4;

use crate::client::UdpClient;
use crate::openloop::OpenLoopClient;
use crate::server::{ServerHandle, UdpServerConfig};
use crate::shim::FaultPlan;
use crate::switch::{SoftSwitch, SwitchHandle};
use crate::work::WorkExecutor;

/// A running local testbed.
pub struct Testbed {
    switch: SoftSwitch,
    servers: Vec<ServerHandle>,
    next_cid: u16,
}

impl Testbed {
    /// Spawns a switch and `n_servers` servers with `workers` worker
    /// threads each, all registered and ready.
    pub fn spawn(
        cfg: NetCloneConfig,
        n_servers: u16,
        workers: usize,
        executor: WorkExecutor,
    ) -> std::io::Result<Testbed> {
        Self::spawn_faulty(cfg, n_servers, workers, executor, None, None)
    }

    /// [`Self::spawn`] with fault injection: every server worker runs the
    /// given [`FaultPlan`] between codec and socket, and server 0's
    /// worker `w` crashes (once, supervised) after serving `k` requests
    /// when `server_crash = Some((w, k))`.
    pub fn spawn_faulty(
        cfg: NetCloneConfig,
        n_servers: u16,
        workers: usize,
        executor: WorkExecutor,
        server_faults: Option<FaultPlan>,
        server_crash: Option<(usize, u64)>,
    ) -> std::io::Result<Testbed> {
        let switch = SoftSwitch::spawn(cfg)?;
        let handle = switch.handle();
        let mut servers = Vec::with_capacity(n_servers as usize);
        for sid in 0..n_servers {
            let server = ServerHandle::spawn(UdpServerConfig {
                sid,
                vip: Ipv4::server(sid),
                workers,
                executor: executor.clone(),
                switch_addr: switch.addr(),
                faults: server_faults.clone(),
                crash_worker: if sid == 0 { server_crash } else { None },
            })?;
            handle
                .register_server(sid, Ipv4::server(sid), server.addr())
                .map_err(std::io::Error::other)?;
            servers.push(server);
        }
        Ok(Testbed {
            switch,
            servers,
            next_cid: 0,
        })
    }

    /// The switch's socket address.
    pub fn switch_addr(&self) -> SocketAddr {
        self.switch.addr()
    }

    /// The switch control-plane handle.
    pub fn switch_handle(&self) -> SwitchHandle {
        self.switch.handle()
    }

    /// The running servers.
    pub fn servers(&self) -> &[ServerHandle] {
        &self.servers
    }

    /// Binds and registers a new client.
    pub fn client(&mut self, seed: u64) -> std::io::Result<UdpClient> {
        let cid = self.next_cid;
        self.next_cid += 1;
        let handle = self.switch.handle();
        let client = UdpClient::bind(cid, self.switch.addr(), handle.num_groups(), 2, seed)?;
        handle
            .register_client(cid, client.vip(), client.addr()?)
            .map_err(std::io::Error::other)?;
        // Give the registration a moment to land before traffic flows.
        std::thread::sleep(Duration::from_millis(5));
        Ok(client)
    }

    /// Binds and registers an open-loop client with `workers` worker
    /// endpoints (consuming `workers` consecutive client ids).
    pub fn open_loop_client(&mut self, workers: usize) -> std::io::Result<OpenLoopClient> {
        let base_cid = self.next_cid;
        self.next_cid += workers as u16;
        let client = OpenLoopClient::bind_workers(base_cid, workers, self.switch.addr())?;
        let handle = self.switch.handle();
        for (cid, vip, sock) in client.endpoints()? {
            handle
                .register_client(cid, vip, sock)
                .map_err(std::io::Error::other)?;
        }
        // Give the registrations a moment to land before traffic flows.
        std::thread::sleep(Duration::from_millis(5));
        Ok(client)
    }

    /// Shuts everything down, joining all threads.
    pub fn shutdown(self) {
        for s in self.servers {
            s.shutdown();
        }
        self.switch.shutdown();
    }
}
