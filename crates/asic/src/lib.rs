//! # netclone-asic
//!
//! A behavioural model of a PISA programmable switch ASIC (Intel
//! Tofino-class), faithful to the constraints that shaped NetClone's design
//! (paper §2.3/§3.4):
//!
//! * **Static allocation** — every stateful object (register array,
//!   match-action table, hash unit) is bound to one pipeline stage at build
//!   time; memory cannot be allocated dynamically.
//! * **Forward-only, single-access passes** — a packet traverses the
//!   stages in order. Accessing a resource in an *earlier* stage than the
//!   current one, or accessing the same resource twice in one pass, is a
//!   hardware impossibility. [`PacketPass`] enforces both as errors, which
//!   is exactly why NetClone needs a *shadow* copy of its state table to
//!   read two server states for one request (§3.4) — the naive
//!   double-read design fails validation here, as on real silicon (see
//!   `tests/prop_pass.rs`).
//! * **Bounded resources** — stage count, per-stage SRAM, hash-distribution
//!   bits, stateful ALUs, and match crossbar bytes are budgeted; the
//!   [`ResourceReport`] reproduces the utilisation metrics of §4.1.
//!
//! The model also provides the two packet-replication mechanisms the paper
//! uses: **multicast** groups and **recirculation** through a loopback port
//! ([`spec::AsicSpec::recirc_latency_ns`]), plus the [`DataPlane`] trait
//! — the *packet path* half of the switch contract. `netclone-core`
//! extends it with control-plane operations as `SwitchEngine`
//! (registration, failure handling, counters); every frontend — the
//! discrete-event simulator and the real-socket soft switch — holds a
//! `Box<dyn SwitchEngine>` and therefore drives the identical program.

pub mod dataplane;
pub mod error;
pub mod hash;
pub mod pass;
pub mod register;
pub mod resources;
pub mod spec;
pub mod table;

pub use dataplane::{DataPlane, Emission, EmissionSink, PortId};
pub use error::AsicError;
pub use hash::{crc32, HashUnit};
pub use pass::PacketPass;
pub use register::RegisterArray;
pub use resources::{Layout, ResourceReport};
pub use spec::AsicSpec;
pub use table::MatchTable;
