//! Static resource layout and utilisation accounting.
//!
//! [`Layout`] is the "compiler": programs declare every stateful object
//! through it, it enforces the stage/SRAM budgets at declaration time, and
//! it produces the [`ResourceReport`] reproducing the §4.1 utilisation
//! metrics (stages, SRAM, match-input crossbar, hash bits, ALUs).

use crate::error::AsicError;
use crate::spec::AsicSpec;

/// Opaque identity of one allocated resource (used by [`crate::PacketPass`]
/// to detect double accesses).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ResourceId(usize);

impl ResourceId {
    #[doc(hidden)]
    pub fn new_for_test(n: usize) -> Self {
        ResourceId(n)
    }
}

/// What kind of object an allocation is (for the report breakdown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResourceKind {
    /// A stateful register array (data-plane read/write).
    Register,
    /// A match-action table (control-plane populated).
    MatchTable,
    /// A hash/CRC computation unit.
    HashUnit,
    /// Action logic that rewrites header fields (accounted for ALU usage).
    ActionEngine,
}

/// One allocation's footprint.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Human-readable name (e.g. `"FilterT[0]"`).
    pub name: String,
    /// Stage the object is bound to.
    pub stage: u8,
    /// Kind of object.
    pub kind: ResourceKind,
    /// SRAM consumed, bytes.
    pub sram_bytes: u64,
    /// Hash-distribution bits consumed.
    pub hash_bits: u64,
    /// ALUs consumed (stateful or action).
    pub alus: u32,
    /// Match-input crossbar bytes consumed.
    pub crossbar_bytes: u32,
}

/// The static layout of a pipeline program.
pub struct Layout {
    spec: AsicSpec,
    allocations: Vec<Allocation>,
    per_stage_sram: Vec<u64>,
    next_id: usize,
}

impl Layout {
    /// Starts an empty layout for the given ASIC.
    pub fn new(spec: AsicSpec) -> Self {
        Layout {
            per_stage_sram: vec![0; spec.stages as usize],
            spec,
            allocations: Vec::new(),
            next_id: 0,
        }
    }

    /// The ASIC capacity model this layout targets.
    pub fn spec(&self) -> &AsicSpec {
        &self.spec
    }

    /// Records an allocation, enforcing stage range and per-stage SRAM
    /// budget. Returns the resource's identity.
    pub fn allocate(&mut self, alloc: Allocation) -> Result<ResourceId, AsicError> {
        if alloc.stage >= self.spec.stages {
            return Err(AsicError::StageOutOfRange {
                stage: alloc.stage,
                stages: self.spec.stages,
            });
        }
        let used = self.per_stage_sram[alloc.stage as usize] + alloc.sram_bytes;
        if used > self.spec.sram_per_stage_bytes {
            return Err(AsicError::SramBudgetExceeded {
                stage: alloc.stage,
                used_bytes: used,
                budget_bytes: self.spec.sram_per_stage_bytes,
            });
        }
        self.per_stage_sram[alloc.stage as usize] = used;
        self.allocations.push(alloc);
        let id = ResourceId(self.next_id);
        self.next_id += 1;
        Ok(id)
    }

    /// All recorded allocations.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Computes the utilisation report (§4.1 metrics).
    pub fn report(&self, program_name: &str) -> ResourceReport {
        let stages_used = self
            .allocations
            .iter()
            .map(|a| a.stage + 1)
            .max()
            .unwrap_or(0);
        let sram: u64 = self.allocations.iter().map(|a| a.sram_bytes).sum();
        let hash: u64 = self.allocations.iter().map(|a| a.hash_bits).sum();
        let alus: u32 = self.allocations.iter().map(|a| a.alus).sum();
        let xbar: u32 = self.allocations.iter().map(|a| a.crossbar_bytes).sum();
        let register_sram: u64 = self
            .allocations
            .iter()
            .filter(|a| a.kind == ResourceKind::Register)
            .map(|a| a.sram_bytes)
            .sum();
        ResourceReport {
            program: program_name.to_string(),
            stages_used,
            stages_total: self.spec.stages,
            sram_bytes: sram,
            sram_pct: pct(sram, self.spec.sram_total_bytes),
            register_sram_bytes: register_sram,
            register_sram_pct: pct(register_sram, self.spec.sram_total_bytes),
            hash_bits: hash,
            hash_pct: pct(hash, self.spec.hash_bits_total),
            alus,
            alu_pct: pct(alus as u64, self.spec.alus_total as u64),
            crossbar_bytes: xbar,
            crossbar_pct: pct(xbar as u64, self.spec.crossbar_bytes_total as u64),
        }
    }
}

fn pct(used: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        used as f64 / total as f64 * 100.0
    }
}

/// Utilisation summary mirroring the metrics reported in §4.1 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceReport {
    /// Program name.
    pub program: String,
    /// Match-action stages consumed (paper: 7 for two filter tables).
    pub stages_used: u8,
    /// Stages available.
    pub stages_total: u8,
    /// Total SRAM consumed, bytes.
    pub sram_bytes: u64,
    /// SRAM utilisation % (paper: 18.04 %).
    pub sram_pct: f64,
    /// SRAM consumed by register arrays alone, bytes (paper: ≈ 1.05 MB of
    /// filter tables).
    pub register_sram_bytes: u64,
    /// Register SRAM as % of switch memory (paper: 4.77 %).
    pub register_sram_pct: f64,
    /// Hash-distribution bits consumed.
    pub hash_bits: u64,
    /// Hash utilisation % (paper: 26.79 %).
    pub hash_pct: f64,
    /// ALUs consumed.
    pub alus: u32,
    /// ALU utilisation % (paper: 21.43 %).
    pub alu_pct: f64,
    /// Match-input crossbar bytes consumed.
    pub crossbar_bytes: u32,
    /// Crossbar utilisation % (paper: 12.28 %).
    pub crossbar_pct: f64,
}

impl std::fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "program: {}", self.program)?;
        writeln!(
            f,
            "  stages:   {} / {} used",
            self.stages_used, self.stages_total
        )?;
        writeln!(
            f,
            "  SRAM:     {:.2}% ({} bytes; registers {:.2}% = {} bytes)",
            self.sram_pct, self.sram_bytes, self.register_sram_pct, self.register_sram_bytes
        )?;
        writeln!(
            f,
            "  hash:     {:.2}% ({} bits)",
            self.hash_pct, self.hash_bits
        )?;
        writeln!(f, "  ALUs:     {:.2}% ({})", self.alu_pct, self.alus)?;
        writeln!(
            f,
            "  crossbar: {:.2}% ({} bytes)",
            self.crossbar_pct, self.crossbar_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(stage: u8, sram: u64) -> Allocation {
        Allocation {
            name: "t".into(),
            stage,
            kind: ResourceKind::Register,
            sram_bytes: sram,
            hash_bits: 10,
            alus: 1,
            crossbar_bytes: 2,
        }
    }

    #[test]
    fn allocations_get_distinct_ids() {
        let mut l = Layout::new(AsicSpec::tofino());
        let a = l.allocate(alloc(0, 100)).unwrap();
        let b = l.allocate(alloc(0, 100)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn stage_out_of_range_is_rejected() {
        let mut l = Layout::new(AsicSpec::tofino());
        let err = l.allocate(alloc(12, 100)).unwrap_err();
        assert!(matches!(err, AsicError::StageOutOfRange { stage: 12, .. }));
    }

    #[test]
    fn sram_budget_is_per_stage() {
        let spec = AsicSpec::tofino();
        let mut l = Layout::new(spec);
        let budget = spec.sram_per_stage_bytes;
        l.allocate(alloc(3, budget)).unwrap();
        // Same stage: full.
        assert!(matches!(
            l.allocate(alloc(3, 1)),
            Err(AsicError::SramBudgetExceeded { stage: 3, .. })
        ));
        // Different stage: fine.
        l.allocate(alloc(4, budget)).unwrap();
    }

    #[test]
    fn report_totals_and_percentages() {
        let spec = AsicSpec::tofino();
        let mut l = Layout::new(spec);
        l.allocate(alloc(0, 1_000)).unwrap();
        l.allocate(alloc(6, 2_000)).unwrap();
        let r = l.report("test");
        assert_eq!(r.stages_used, 7);
        assert_eq!(r.sram_bytes, 3_000);
        assert_eq!(r.hash_bits, 20);
        assert_eq!(r.alus, 2);
        assert_eq!(r.crossbar_bytes, 4);
        let expect_pct = 3_000.0 / spec.sram_total_bytes as f64 * 100.0;
        assert!((r.sram_pct - expect_pct).abs() < 1e-9);
        assert!(r.to_string().contains("stages:   7 / 12"));
    }

    #[test]
    fn empty_layout_reports_zero() {
        let l = Layout::new(AsicSpec::tofino());
        let r = l.report("empty");
        assert_eq!(r.stages_used, 0);
        assert_eq!(r.sram_bytes, 0);
    }
}
