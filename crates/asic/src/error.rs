//! Errors surfaced by the ASIC model.
//!
//! Build-time errors ([`AsicError::StageOutOfRange`],
//! [`AsicError::SramBudgetExceeded`]) correspond to P4 compiler rejections;
//! pass-time errors ([`AsicError::StageRegression`],
//! [`AsicError::DoubleAccess`]) correspond to designs that simply cannot be
//! expressed on the hardware — the constraints §3.4 of the paper works
//! around.

use std::fmt;

/// Everything that can go wrong when building or executing a pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AsicError {
    /// A resource was declared in a stage the pipeline does not have.
    StageOutOfRange {
        /// Declared stage.
        stage: u8,
        /// Number of stages available.
        stages: u8,
    },
    /// A stage's SRAM budget was exceeded at allocation time.
    SramBudgetExceeded {
        /// Stage whose budget was exceeded.
        stage: u8,
        /// Bytes that would be allocated in that stage.
        used_bytes: u64,
        /// The per-stage budget.
        budget_bytes: u64,
    },
    /// A packet tried to access a resource bound to an earlier stage than
    /// its current position ("packets go through processing stages
    /// sequentially", §1).
    StageRegression {
        /// Stage the resource is bound to.
        bound_stage: u8,
        /// Stage the packet had already reached.
        current_stage: u8,
    },
    /// A packet tried to access the same stateful resource twice in one
    /// pass ("it is impossible to access data stored in the memory twice
    /// for a single pass", §2.3).
    DoubleAccess {
        /// Stage of the resource.
        stage: u8,
    },
    /// A register index beyond the array's static size.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Array size.
        size: usize,
    },
    /// A match-table insert beyond its static capacity.
    TableFull {
        /// Static capacity.
        capacity: usize,
    },
}

impl fmt::Display for AsicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AsicError::StageOutOfRange { stage, stages } => {
                write!(f, "stage {stage} out of range (pipeline has {stages})")
            }
            AsicError::SramBudgetExceeded {
                stage,
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "stage {stage} SRAM budget exceeded: {used_bytes} > {budget_bytes} bytes"
            ),
            AsicError::StageRegression {
                bound_stage,
                current_stage,
            } => write!(
                f,
                "cannot access stage-{bound_stage} resource after reaching stage {current_stage} \
                 (packets traverse stages forward only)"
            ),
            AsicError::DoubleAccess { stage } => write!(
                f,
                "stateful resource in stage {stage} accessed twice in one pass \
                 (one access per resource per pass)"
            ),
            AsicError::IndexOutOfBounds { index, size } => {
                write!(f, "register index {index} out of bounds (size {size})")
            }
            AsicError::TableFull { capacity } => {
                write!(f, "match table full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for AsicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_constraint() {
        let e = AsicError::DoubleAccess { stage: 2 };
        assert!(e.to_string().contains("twice"));
        let e = AsicError::StageRegression {
            bound_stage: 1,
            current_stage: 3,
        };
        assert!(e.to_string().contains("forward"));
    }
}
