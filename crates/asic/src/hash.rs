//! Hash units: CRC-based hash computation, the primitive behind the filter
//! tables' slot index (Algorithm 1 line 18: `Hidx ← Hash(pkt.req_id)`).
//!
//! Tofino's hash distribution units compute CRCs over selected header
//! fields; we implement CRC-32 (IEEE polynomial, reflected) with a small
//! table, and expose it both as a free function and as a stage-bound
//! [`HashUnit`] resource.

use crate::error::AsicError;
use crate::pass::PacketPass;
use crate::resources::{Allocation, Layout, ResourceId, ResourceKind};

/// Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) lookup table.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            k += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// Computes CRC-32 (IEEE) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// A stage-bound hash computation unit producing `out_bits`-wide indices.
pub struct HashUnit {
    name: String,
    id: ResourceId,
    stage: u8,
    mask: u32,
}

impl HashUnit {
    /// Allocates a hash unit in `stage` producing values in
    /// `0 .. 2^out_bits`.
    pub fn alloc(
        layout: &mut Layout,
        name: &str,
        stage: u8,
        in_bytes: u32,
        out_bits: u32,
    ) -> Result<Self, AsicError> {
        assert!((1..=32).contains(&out_bits), "out_bits must be 1..=32");
        let id = layout.allocate(Allocation {
            name: name.to_string(),
            stage,
            kind: ResourceKind::HashUnit,
            sram_bytes: 0,
            hash_bits: (in_bytes * 8 + out_bits) as u64,
            alus: 0,
            crossbar_bytes: in_bytes,
        })?;
        Ok(HashUnit {
            name: name.to_string(),
            id,
            stage,
            mask: if out_bits == 32 {
                u32::MAX
            } else {
                (1u32 << out_bits) - 1
            },
        })
    }

    /// The unit's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computes the masked CRC of `data` (one access per pass).
    pub fn hash(&self, pass: &mut PacketPass, data: &[u8]) -> Result<u32, AsicError> {
        pass.access(self.id, self.stage)?;
        Ok(crc32(data) & self.mask)
    }

    /// The output mask (`2^out_bits - 1`).
    pub fn mask(&self) -> u32 {
        self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AsicSpec;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_is_sensitive_to_every_byte() {
        let a = crc32(&[1, 2, 3, 4]);
        let b = crc32(&[1, 2, 3, 5]);
        assert_ne!(a, b);
    }

    #[test]
    fn unit_masks_to_out_bits() {
        let mut layout = Layout::new(AsicSpec::tofino());
        let h = HashUnit::alloc(&mut layout, "h", 4, 4, 17).unwrap();
        assert_eq!(h.mask(), (1 << 17) - 1);
        for req_id in 0u32..64 {
            let v = h
                .hash(&mut PacketPass::new(), &req_id.to_be_bytes())
                .unwrap();
            assert!(v < (1 << 17));
        }
    }

    #[test]
    fn unit_is_single_access() {
        let mut layout = Layout::new(AsicSpec::tofino());
        let h = HashUnit::alloc(&mut layout, "h", 4, 4, 16).unwrap();
        let mut pass = PacketPass::new();
        h.hash(&mut pass, &[0]).unwrap();
        assert!(h.hash(&mut pass, &[0]).is_err());
    }

    #[test]
    fn full_width_unit_is_plain_crc() {
        let mut layout = Layout::new(AsicSpec::tofino());
        let h = HashUnit::alloc(&mut layout, "h", 0, 9, 32).unwrap();
        let mut pass = PacketPass::new();
        assert_eq!(h.hash(&mut pass, b"123456789").unwrap(), 0xCBF4_3926);
    }
}
