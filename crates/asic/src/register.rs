//! Stateful register arrays.
//!
//! On a PISA ASIC a register array lives in one stage's SRAM and is served
//! by a stateful ALU that performs at most one read-modify-write per
//! packet. [`RegisterArray::read_modify_write`] models exactly that: a
//! single access that may both observe and update a cell — which is how
//! NetClone's filter tables test-and-clear a fingerprint in one touch
//! (Algorithm 1 lines 19–23).

use crate::error::AsicError;
use crate::pass::PacketPass;
use crate::resources::{Allocation, Layout, ResourceId, ResourceKind};

/// A register array bound to one pipeline stage.
pub struct RegisterArray<T> {
    name: String,
    id: ResourceId,
    stage: u8,
    cells: Vec<T>,
}

impl<T: Copy + Default> RegisterArray<T> {
    /// Allocates an array of `size` cells of `width_bytes` each in `stage`.
    ///
    /// `width_bytes` is the accounting width (Tofino registers are 8/16/32
    /// bits wide; pass the real width even if `T` is a wider Rust type).
    pub fn alloc(
        layout: &mut Layout,
        name: &str,
        stage: u8,
        size: usize,
        width_bytes: u32,
    ) -> Result<Self, AsicError> {
        let index_bits = (usize::BITS - size.saturating_sub(1).leading_zeros()).max(1) as u64;
        let id = layout.allocate(Allocation {
            name: name.to_string(),
            stage,
            kind: ResourceKind::Register,
            sram_bytes: size as u64 * width_bytes as u64,
            // Address distribution for the index, in and out of the hash
            // distribution network.
            hash_bits: 2 * index_bits,
            alus: 1,           // one stateful ALU serves the array
            crossbar_bytes: 2, // 16-bit index through the match crossbar
        })?;
        Ok(RegisterArray {
            name: name.to_string(),
            id,
            stage,
            cells: vec![T::default(); size],
        })
    }

    /// The array's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage this array is bound to.
    pub fn stage(&self) -> u8 {
        self.stage
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has zero cells (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn check_idx(&self, index: usize) -> Result<(), AsicError> {
        if index >= self.cells.len() {
            Err(AsicError::IndexOutOfBounds {
                index,
                size: self.cells.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads one cell (counts as this pass's single access to the array).
    pub fn read(&self, pass: &mut PacketPass, index: usize) -> Result<T, AsicError> {
        self.check_idx(index)?;
        pass.access(self.id, self.stage)?;
        Ok(self.cells[index])
    }

    /// Writes one cell (counts as this pass's single access to the array).
    pub fn write(
        &mut self,
        pass: &mut PacketPass,
        index: usize,
        value: T,
    ) -> Result<(), AsicError> {
        self.check_idx(index)?;
        pass.access(self.id, self.stage)?;
        self.cells[index] = value;
        Ok(())
    }

    /// Atomic read-modify-write: observes the old value, stores `f(old)`,
    /// and returns the old value — one stateful-ALU operation, one access.
    pub fn read_modify_write(
        &mut self,
        pass: &mut PacketPass,
        index: usize,
        f: impl FnOnce(T) -> T,
    ) -> Result<T, AsicError> {
        self.check_idx(index)?;
        pass.access(self.id, self.stage)?;
        let old = self.cells[index];
        self.cells[index] = f(old);
        Ok(old)
    }

    /// Control-plane / failure-recovery reset: zeroes every cell without a
    /// packet pass (§3.6: soft state is lost on switch failure).
    pub fn reset(&mut self) {
        self.cells.fill(T::default());
    }

    /// Control-plane peek (no pass constraints — the control plane reads
    /// registers out of band).
    pub fn peek(&self, index: usize) -> Option<T> {
        self.cells.get(index).copied()
    }

    /// Control-plane poke (e.g. priming state in tests).
    pub fn poke(&mut self, index: usize, value: T) {
        if let Some(c) = self.cells.get_mut(index) {
            *c = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AsicSpec;

    fn mk() -> (Layout, RegisterArray<u32>) {
        let mut layout = Layout::new(AsicSpec::tofino());
        let reg = RegisterArray::<u32>::alloc(&mut layout, "r", 2, 8, 4).unwrap();
        (layout, reg)
    }

    #[test]
    fn read_write_round_trip() {
        let (_l, mut reg) = mk();
        let mut pass = PacketPass::new();
        reg.write(&mut pass, 3, 77).unwrap();
        let mut pass2 = PacketPass::new();
        assert_eq!(reg.read(&mut pass2, 3).unwrap(), 77);
    }

    #[test]
    fn two_accesses_in_one_pass_fail() {
        let (_l, mut reg) = mk();
        let mut pass = PacketPass::new();
        reg.write(&mut pass, 0, 1).unwrap();
        assert_eq!(
            reg.read(&mut pass, 0),
            Err(AsicError::DoubleAccess { stage: 2 })
        );
    }

    #[test]
    fn rmw_returns_old_and_stores_new() {
        let (_l, mut reg) = mk();
        let mut pass = PacketPass::new();
        reg.poke(5, 10);
        let old = reg.read_modify_write(&mut pass, 5, |v| v + 1).unwrap();
        assert_eq!(old, 10);
        assert_eq!(reg.peek(5), Some(11));
    }

    #[test]
    fn rmw_counts_as_one_access() {
        let (_l, mut reg) = mk();
        let mut pass = PacketPass::new();
        reg.read_modify_write(&mut pass, 0, |v| v).unwrap();
        assert!(reg.read(&mut pass, 1).is_err(), "second touch must fail");
    }

    #[test]
    fn out_of_bounds_is_reported_without_consuming_the_access() {
        let (_l, mut reg) = mk();
        let mut pass = PacketPass::new();
        assert_eq!(
            reg.read(&mut pass, 99),
            Err(AsicError::IndexOutOfBounds { index: 99, size: 8 })
        );
        // The failed access did not burn the pass's single touch.
        assert!(reg.write(&mut pass, 0, 1).is_ok());
    }

    #[test]
    fn reset_zeroes_all_cells() {
        let (_l, mut reg) = mk();
        reg.poke(0, 42);
        reg.poke(7, 43);
        reg.reset();
        assert_eq!(reg.peek(0), Some(0));
        assert_eq!(reg.peek(7), Some(0));
    }

    #[test]
    fn allocation_is_budget_checked() {
        let mut layout = Layout::new(AsicSpec::tofino());
        // One giant array over the per-stage budget must fail.
        let huge = (AsicSpec::tofino().sram_per_stage_bytes / 4 + 1) as usize;
        assert!(RegisterArray::<u32>::alloc(&mut layout, "huge", 0, huge, 4).is_err());
    }
}
