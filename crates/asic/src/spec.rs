//! ASIC capacity constants.
//!
//! The absolute capacities of commercial switch ASICs are proprietary; the
//! constants here are *modeled* Tofino-class values, chosen once so that
//! the NetClone program's utilisation report lands where §4.1 reports it
//! (18.04 % SRAM, 12.28 % crossbar, 26.79 % hash, 21.43 % ALUs, 7 stages,
//! filter tables ≈ 1.05 MB = 4.77 % of switch memory). The *structure* of
//! the accounting — what consumes what — is computed from the actual
//! allocations, not hard-coded.

/// Capacity model of one switch pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsicSpec {
    /// Number of match-action stages in the ingress pipeline.
    pub stages: u8,
    /// Total data-plane SRAM budget, bytes (the paper's "switch memory";
    /// 1.05 MB of filter tables = 4.77 % ⇒ ≈ 22 MB).
    pub sram_total_bytes: u64,
    /// Per-stage SRAM budget, bytes.
    pub sram_per_stage_bytes: u64,
    /// Total hash-distribution capacity, bits.
    pub hash_bits_total: u64,
    /// Total (stateful + action) ALUs.
    pub alus_total: u32,
    /// Total match-input crossbar capacity, bytes.
    pub crossbar_bytes_total: u32,
    /// Latency of one full pipeline pass (parser → stages → deparser), ns.
    pub pass_latency_ns: u64,
    /// Extra latency for one recirculation through a loopback port, ns.
    pub recirc_latency_ns: u64,
}

impl AsicSpec {
    /// The Tofino-class defaults used throughout the reproduction.
    ///
    /// The denominators are calibrated once against §4.1 (see module docs):
    /// with them, the complete NetClone program (incl. its L2/L3 base
    /// tables) reports 18.04 % SRAM, 26.79 % hash, 21.43 % ALUs and
    /// 12.27 % crossbar — the paper's numbers.
    pub fn tofino() -> Self {
        AsicSpec {
            stages: 12,
            sram_total_bytes: 22_256_000,
            sram_per_stage_bytes: 2 * 1024 * 1024,
            hash_bits_total: 2_624,
            alus_total: 70,
            crossbar_bytes_total: 1_092,
            pass_latency_ns: 600,
            recirc_latency_ns: 800,
        }
    }
}

impl Default for AsicSpec {
    fn default() -> Self {
        Self::tofino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_spec_is_self_consistent() {
        let s = AsicSpec::tofino();
        assert!(s.stages >= 7, "NetClone needs 7 stages (paper §4.1)");
        assert!(
            s.pass_latency_ns < 1_000,
            "per-packet delay is hundreds of ns (§2.3)"
        );
        assert!(s.sram_per_stage_bytes <= s.sram_total_bytes);
    }

    #[test]
    fn filter_tables_are_about_4_77_percent() {
        // 2 tables × 2^17 slots × 4 B (paper §4.1: "our hash tables use
        // roughly 1.05 MB, which is 4.77 % of the switch memory").
        let s = AsicSpec::tofino();
        let filter_bytes = 2u64 * (1 << 17) * 4;
        let frac = filter_bytes as f64 / s.sram_total_bytes as f64 * 100.0;
        assert!((frac - 4.77).abs() < 0.3, "filter fraction {frac}%");
    }
}
