//! Match-action tables.
//!
//! Entries are installed by the control plane (slow path) and matched by
//! packets in the data plane (one lookup per pass, like any stateful
//! resource). NetClone's group table, address table, and the L3 routing
//! table are instances of this type.

use std::collections::HashMap;
use std::hash::Hash;

use crate::error::AsicError;
use crate::pass::PacketPass;
use crate::resources::{Allocation, Layout, ResourceId, ResourceKind};

/// An exact-match match-action table bound to one stage.
pub struct MatchTable<K, V> {
    name: String,
    id: ResourceId,
    stage: u8,
    capacity: usize,
    map: HashMap<K, V>,
}

impl<K: Eq + Hash + Copy, V: Copy> MatchTable<K, V> {
    /// Allocates a table with static `capacity` in `stage`.
    ///
    /// `key_bytes`/`value_bytes` are the accounting widths; SRAM is modeled
    /// as `capacity × (key + value + 8B overhead)` (pointers, action data,
    /// ECC), hash as a 4-way exact-match lookup, crossbar as the key bytes
    /// fanned across the ways.
    pub fn alloc(
        layout: &mut Layout,
        name: &str,
        stage: u8,
        capacity: usize,
        key_bytes: u32,
        value_bytes: u32,
        action_alus: u32,
    ) -> Result<Self, AsicError> {
        let id = layout.allocate(Allocation {
            name: name.to_string(),
            stage,
            kind: ResourceKind::MatchTable,
            sram_bytes: capacity as u64 * (key_bytes + value_bytes + 8) as u64,
            hash_bits: 4 * key_bytes as u64 * 8,
            alus: action_alus,
            crossbar_bytes: key_bytes * 8,
        })?;
        Ok(MatchTable {
            name: name.to_string(),
            id,
            stage,
            capacity,
            map: HashMap::with_capacity(capacity.min(4096)),
        })
    }

    /// The table's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage this table is bound to.
    pub fn stage(&self) -> u8 {
        self.stage
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Data-plane lookup (one access per pass).
    pub fn lookup(&self, pass: &mut PacketPass, key: K) -> Result<Option<V>, AsicError> {
        pass.access(self.id, self.stage)?;
        Ok(self.map.get(&key).copied())
    }

    /// Control-plane insert/update. Fails when the static capacity is
    /// exhausted (memory cannot grow at runtime).
    pub fn insert(&mut self, key: K, value: V) -> Result<(), AsicError> {
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            return Err(AsicError::TableFull {
                capacity: self.capacity,
            });
        }
        self.map.insert(key, value);
        Ok(())
    }

    /// Control-plane delete. Returns true if the entry existed.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Control-plane wipe (e.g. rebuilding the group table after a server
    /// failure, §3.6).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Control-plane read (no pass constraints).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.map.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AsicSpec;

    fn mk(capacity: usize) -> (Layout, MatchTable<u16, u32>) {
        let mut layout = Layout::new(AsicSpec::tofino());
        let t = MatchTable::alloc(&mut layout, "t", 1, capacity, 2, 4, 1).unwrap();
        (layout, t)
    }

    #[test]
    fn lookup_finds_installed_entries() {
        let (_l, mut t) = mk(16);
        t.insert(5, 500).unwrap();
        let mut pass = PacketPass::new();
        assert_eq!(t.lookup(&mut pass, 5).unwrap(), Some(500));
        let mut pass2 = PacketPass::new();
        assert_eq!(t.lookup(&mut pass2, 6).unwrap(), None);
    }

    #[test]
    fn one_lookup_per_pass() {
        let (_l, mut t) = mk(16);
        t.insert(1, 1).unwrap();
        let mut pass = PacketPass::new();
        t.lookup(&mut pass, 1).unwrap();
        assert!(t.lookup(&mut pass, 1).is_err());
    }

    #[test]
    fn capacity_is_static() {
        let (_l, mut t) = mk(2);
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        assert_eq!(t.insert(3, 3), Err(AsicError::TableFull { capacity: 2 }));
        // Updating an existing key is always allowed.
        t.insert(2, 22).unwrap();
        assert_eq!(t.peek(&2), Some(22));
    }

    #[test]
    fn remove_and_clear() {
        let (_l, mut t) = mk(4);
        t.insert(1, 1).unwrap();
        assert!(t.remove(&1));
        assert!(!t.remove(&1));
        t.insert(2, 2).unwrap();
        t.clear();
        assert!(t.is_empty());
    }
}
