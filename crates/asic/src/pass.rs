//! [`PacketPass`] — the guard that makes PISA's execution model
//! unavoidable.
//!
//! Every stateful access (register read/write/RMW, table lookup, hash
//! computation) takes `&mut PacketPass`. The guard tracks the furthest
//! stage the packet has reached and the set of resources already touched,
//! and refuses:
//!
//! * accesses to a resource bound to an **earlier** stage
//!   ([`AsicError::StageRegression`]), and
//! * a **second** access to the same resource
//!   ([`AsicError::DoubleAccess`]).
//!
//! This is the constraint that forces NetClone's shadow state table: one
//! pass cannot read `StateT` twice, so the second candidate's state must
//! live in a copy allocated in a later stage (§3.4).

use crate::error::AsicError;
use crate::resources::ResourceId;

/// Tracks one packet's traversal of the pipeline.
#[derive(Debug)]
pub struct PacketPass {
    current_stage: u8,
    touched: Vec<ResourceId>,
}

impl Default for PacketPass {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketPass {
    /// Begins a fresh pass at the parser (before stage 0).
    pub fn new() -> Self {
        PacketPass {
            current_stage: 0,
            touched: Vec::with_capacity(8),
        }
    }

    /// The furthest stage this packet has reached.
    pub fn current_stage(&self) -> u8 {
        self.current_stage
    }

    /// Number of stateful accesses performed so far.
    pub fn accesses(&self) -> usize {
        self.touched.len()
    }

    /// Validates and records an access to `resource` bound at `stage`.
    ///
    /// Called by the resource wrappers; programs normally never call this
    /// directly.
    pub fn access(&mut self, resource: ResourceId, stage: u8) -> Result<(), AsicError> {
        if stage < self.current_stage {
            return Err(AsicError::StageRegression {
                bound_stage: stage,
                current_stage: self.current_stage,
            });
        }
        if self.touched.contains(&resource) {
            return Err(AsicError::DoubleAccess { stage });
        }
        self.current_stage = stage;
        self.touched.push(resource);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: usize) -> ResourceId {
        ResourceId::new_for_test(n)
    }

    #[test]
    fn forward_accesses_are_allowed() {
        let mut pass = PacketPass::new();
        assert!(pass.access(rid(0), 0).is_ok());
        assert!(pass.access(rid(1), 0).is_ok()); // same stage, different resource
        assert!(pass.access(rid(2), 3).is_ok()); // skipping stages is fine
        assert_eq!(pass.current_stage(), 3);
        assert_eq!(pass.accesses(), 3);
    }

    #[test]
    fn backward_access_is_rejected() {
        let mut pass = PacketPass::new();
        pass.access(rid(0), 2).unwrap();
        assert_eq!(
            pass.access(rid(1), 1),
            Err(AsicError::StageRegression {
                bound_stage: 1,
                current_stage: 2
            })
        );
    }

    #[test]
    fn double_access_is_rejected() {
        let mut pass = PacketPass::new();
        pass.access(rid(7), 1).unwrap();
        assert_eq!(
            pass.access(rid(7), 1),
            Err(AsicError::DoubleAccess { stage: 1 })
        );
        // …even if the packet has moved to a later stage in between: the
        // resource's memory is physically in stage 1, behind the packet.
        let mut pass = PacketPass::new();
        pass.access(rid(7), 1).unwrap();
        pass.access(rid(8), 4).unwrap();
        assert!(pass.access(rid(7), 1).is_err());
    }

    #[test]
    fn fresh_pass_resets_everything() {
        let mut pass = PacketPass::new();
        pass.access(rid(0), 5).unwrap();
        let pass2 = PacketPass::new();
        assert_eq!(pass2.current_stage(), 0);
        assert_eq!(pass2.accesses(), 0);
    }
}
