//! The [`DataPlane`] trait: the contract between a switch program and
//! whatever carries its packets (the discrete-event simulator or the
//! real-socket soft switch).
//!
//! A program receives one parsed packet plus its ingress port and returns
//! the packets to emit, each with an egress port and the processing latency
//! it accrued inside the switch (pipeline passes + any recirculations —
//! replication and recirculation are internal to the program, so callers
//! only ever see final emissions).

use netclone_proto::PacketMeta;

/// A switch port number.
pub type PortId = u16;

/// One packet leaving the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    /// The (possibly rewritten) packet.
    pub pkt: PacketMeta,
    /// Egress port.
    pub port: PortId,
    /// Total in-switch latency accrued by this packet, ns.
    pub latency_ns: u64,
}

/// A switch data-plane program.
pub trait DataPlane {
    /// Short program name (diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Processes one ingress packet and returns everything that egresses.
    ///
    /// An empty vector means the packet was dropped (e.g. a filtered
    /// redundant response, or no route).
    fn process(&mut self, pkt: PacketMeta, ingress: PortId, now_ns: u64) -> Vec<Emission>;

    /// Clears all *soft* state (server states, sequence numbers, filter
    /// fingerprints) as a power cycle would (§3.6 "Switch failures").
    /// Match-action table entries survive: the control plane reinstalls
    /// them on recovery.
    fn reset_soft_state(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{Ipv4, NetCloneHdr};

    /// A trivial program for trait-object sanity: forwards everything to
    /// port 0 with fixed latency.
    struct Null;

    impl DataPlane for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn process(&mut self, pkt: PacketMeta, _ingress: PortId, _now_ns: u64) -> Vec<Emission> {
            vec![Emission {
                pkt,
                port: 0,
                latency_ns: 100,
            }]
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut dp: Box<dyn DataPlane> = Box::new(Null);
        let pkt =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 64);
        let out = dp.process(pkt, 5, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 0);
        assert_eq!(out[0].latency_ns, 100);
        assert_eq!(dp.name(), "null");
        dp.reset_soft_state(); // default no-op must be callable
    }
}
