//! The [`DataPlane`] trait: the contract between a switch program and
//! whatever carries its packets (the discrete-event simulator or the
//! real-socket soft switch).
//!
//! A program receives one parsed packet plus its ingress port and appends
//! the packets to emit — each with an egress port and the processing
//! latency it accrued inside the switch (pipeline passes + any
//! recirculations; replication and recirculation are internal to the
//! program, so callers only ever see final emissions) — into a
//! caller-provided [`EmissionSink`].
//!
//! ## The `EmissionSink` contract
//!
//! The sink is a reusable buffer owned by the *caller* (the simulator
//! holds exactly one per run; the soft switch one per forwarding thread),
//! so the per-packet path performs no heap allocation in steady state:
//!
//! * [`DataPlane::process`] only **appends**; it never reads, clears, or
//!   reorders existing contents. Callers normally hand in an empty sink
//!   and drain it in place afterwards.
//! * A program emits at most a handful of packets per ingress packet
//!   (cloning produces two), so the sink's initial capacity of
//!   [`EmissionSink::INLINE_CAPACITY`] never grows in steady state.
//! * Emission **order is part of the program's behaviour** (the original
//!   egresses before its recirculated clone) and must be deterministic —
//!   the DES frontend schedules emissions in sink order.
//! * Programs must not retain the sink across calls (the `&mut` borrow
//!   enforces this), so `process` is trivially reentrant per program.

use netclone_proto::PacketMeta;

/// A switch port number.
pub type PortId = u16;

/// One packet leaving the switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    /// The (possibly rewritten) packet.
    pub pkt: PacketMeta,
    /// Egress port.
    pub port: PortId,
    /// Total in-switch latency accrued by this packet, ns.
    pub latency_ns: u64,
}

/// A reusable, caller-owned buffer of [`Emission`]s (see the module docs
/// for the ownership and reentrancy contract).
///
/// Backed by a `Vec` whose capacity is retained across
/// [`EmissionSink::clear`]/[`EmissionSink::drain`], so a long-lived sink
/// allocates exactly once. Dereferences to `[Emission]` for inspection.
#[derive(Clone, Debug, Default)]
pub struct EmissionSink {
    buf: Vec<Emission>,
}

impl EmissionSink {
    /// Initial capacity: enough for every program in the workspace
    /// (cloning emits two packets; nothing emits more than a handful).
    pub const INLINE_CAPACITY: usize = 8;

    /// Creates an empty sink with the default capacity pre-allocated.
    pub fn new() -> Self {
        EmissionSink {
            buf: Vec::with_capacity(Self::INLINE_CAPACITY),
        }
    }

    /// Appends one emission.
    #[inline]
    pub fn push(&mut self, e: Emission) {
        self.buf.push(e);
    }

    /// Removes all emissions, keeping the allocated capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Drains the buffered emissions front-to-back, keeping the allocated
    /// capacity for reuse.
    #[inline]
    pub fn drain(&mut self) -> std::vec::Drain<'_, Emission> {
        self.buf.drain(..)
    }
}

impl std::ops::Deref for EmissionSink {
    type Target = [Emission];
    #[inline]
    fn deref(&self) -> &[Emission] {
        &self.buf
    }
}

impl std::ops::DerefMut for EmissionSink {
    #[inline]
    fn deref_mut(&mut self) -> &mut [Emission] {
        &mut self.buf
    }
}

impl IntoIterator for EmissionSink {
    type Item = Emission;
    type IntoIter = std::vec::IntoIter<Emission>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter()
    }
}

impl<'a> IntoIterator for &'a EmissionSink {
    type Item = &'a Emission;
    type IntoIter = std::slice::Iter<'a, Emission>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// A switch data-plane program.
pub trait DataPlane {
    /// Short program name (diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Processes one ingress packet, appending everything that egresses
    /// to `out` (see the module docs for the sink contract).
    ///
    /// Appending nothing means the packet was dropped (e.g. a filtered
    /// redundant response, or no route).
    fn process(&mut self, pkt: PacketMeta, ingress: PortId, now_ns: u64, out: &mut EmissionSink);

    /// Convenience for tests and diagnostics: processes one packet into a
    /// fresh sink and returns it. Hot paths hold a reusable sink and call
    /// [`DataPlane::process`] instead — this allocates per call.
    fn process_collected(&mut self, pkt: PacketMeta, ingress: PortId, now_ns: u64) -> EmissionSink {
        let mut out = EmissionSink::new();
        self.process(pkt, ingress, now_ns, &mut out);
        out
    }

    /// Clears all *soft* state (server states, sequence numbers, filter
    /// fingerprints) as a power cycle would (§3.6 "Switch failures").
    /// Match-action table entries survive: the control plane reinstalls
    /// them on recovery.
    fn reset_soft_state(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{Ipv4, NetCloneHdr};

    /// A trivial program for trait-object sanity: forwards everything to
    /// port 0 with fixed latency.
    struct Null;

    impl DataPlane for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn process(
            &mut self,
            pkt: PacketMeta,
            _ingress: PortId,
            _now_ns: u64,
            out: &mut EmissionSink,
        ) {
            out.push(Emission {
                pkt,
                port: 0,
                latency_ns: 100,
            });
        }
    }

    #[test]
    fn trait_objects_work() {
        let mut dp: Box<dyn DataPlane> = Box::new(Null);
        let pkt =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 64);
        let out = dp.process_collected(pkt, 5, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, 0);
        assert_eq!(out[0].latency_ns, 100);
        assert_eq!(dp.name(), "null");
        dp.reset_soft_state(); // default no-op must be callable
    }

    #[test]
    fn sink_appends_and_reuses_capacity() {
        let mut dp = Null;
        let pkt =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 64);
        let mut sink = EmissionSink::new();
        let cap_before = sink.buf.capacity();
        assert_eq!(cap_before, EmissionSink::INLINE_CAPACITY);

        // process() appends without clearing prior contents.
        dp.process(pkt, 5, 0, &mut sink);
        dp.process(pkt, 5, 0, &mut sink);
        assert_eq!(sink.len(), 2);

        // Draining and clearing keep the allocation: the steady state
        // never reallocates.
        assert_eq!(sink.drain().count(), 2);
        assert!(sink.is_empty());
        assert_eq!(sink.buf.capacity(), cap_before, "drain freed the buffer");
        dp.process(pkt, 5, 0, &mut sink);
        assert_eq!(sink.len(), 1);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.buf.capacity(), cap_before, "clear freed the buffer");
    }
}
