//! Property tests for the PISA execution constraints — including the test
//! that *encodes the paper's §3.4 challenge*: a program that tries to read
//! one state table twice in a pass is impossible, while the shadow-table
//! design passes.

use netclone_asic::{AsicError, AsicSpec, Layout, PacketPass, RegisterArray};
use proptest::prelude::*;

/// The paper's motivating constraint, as an executable fact: reading the
/// state table for server 1 and then *again* for server 2 fails; reading
/// the shadow copy (allocated in a later stage) succeeds.
#[test]
fn shadow_table_is_necessary_and_sufficient() {
    let mut layout = Layout::new(AsicSpec::tofino());
    let mut state = RegisterArray::<u16>::alloc(&mut layout, "StateT", 2, 256, 2).unwrap();
    let mut shadow = RegisterArray::<u16>::alloc(&mut layout, "ShadowT", 3, 256, 2).unwrap();
    state.poke(1, 0);
    state.poke(2, 0);
    shadow.poke(2, 0);

    // Naive design: StateT[srv1] then StateT[srv2] — rejected by hardware.
    let mut naive = PacketPass::new();
    state.read(&mut naive, 1).unwrap();
    assert_eq!(
        state.read(&mut naive, 2),
        Err(AsicError::DoubleAccess { stage: 2 })
    );

    // NetClone's design: StateT[srv1] then ShadowT[srv2] — fine.
    let mut nc = PacketPass::new();
    assert!(state.read(&mut nc, 1).is_ok());
    assert!(shadow.read(&mut nc, 2).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any access script, the pass accepts it iff stages are
    /// non-decreasing and no resource repeats — the exact PISA rule.
    #[test]
    fn pass_accepts_exactly_the_legal_scripts(
        script in proptest::collection::vec((0usize..6, 0u8..12), 1..20)
    ) {
        // Model: resource i is bound to stage = its declared stage in the
        // first occurrence; later occurrences must use the same stage to be
        // meaningful, so normalise first.
        let mut stage_of = [None::<u8>; 6];
        let mut normalised = Vec::new();
        for &(res, st) in &script {
            let st = *stage_of[res].get_or_insert(st);
            normalised.push((res, st));
        }

        // Reference decision: legal iff stages never decrease and no
        // resource appears twice.
        let mut legal = true;
        let mut cur = 0u8;
        let mut seen = [false; 6];
        for &(res, st) in &normalised {
            if st < cur || seen[res] {
                legal = false;
                break;
            }
            cur = st;
            seen[res] = true;
        }

        // Execute against the real guard.
        let mut pass = PacketPass::new();
        let ids: Vec<_> = (0..6)
            .map(netclone_asic::resources::ResourceId::new_for_test)
            .collect();
        let mut ok = true;
        for &(res, st) in &normalised {
            if pass.access(ids[res], st).is_err() {
                ok = false;
                break;
            }
        }
        prop_assert_eq!(ok, legal);
    }

    /// Register contents written in pass N are visible in pass N+1
    /// regardless of index order (per-pass isolation only limits accesses,
    /// not persistence).
    #[test]
    fn registers_persist_across_passes(
        writes in proptest::collection::vec((0usize..32, any::<u16>()), 1..40)
    ) {
        let mut layout = Layout::new(AsicSpec::tofino());
        let mut reg = RegisterArray::<u16>::alloc(&mut layout, "r", 0, 32, 2).unwrap();
        let mut expected = [0u16; 32];
        for &(idx, v) in &writes {
            let mut pass = PacketPass::new();
            reg.write(&mut pass, idx, v).unwrap();
            expected[idx] = v;
        }
        for (idx, &want) in expected.iter().enumerate() {
            let mut pass = PacketPass::new();
            prop_assert_eq!(reg.read(&mut pass, idx).unwrap(), want);
        }
    }

    /// crc32 is deterministic and uniform-ish over a 17-bit mask: no single
    /// slot absorbs a wildly disproportionate share of sequential IDs
    /// (request IDs are sequential in NetClone).
    #[test]
    fn crc_spreads_sequential_ids(start in any::<u32>()) {
        use netclone_asic::crc32;
        let n = 2048u32;
        let buckets = 64u32;
        let mut counts = vec![0u32; buckets as usize];
        for i in 0..n {
            let id = start.wrapping_add(i);
            let h = crc32(&id.to_be_bytes()) % buckets;
            counts[h as usize] += 1;
        }
        let expect = n / buckets; // 32 per bucket
        for &c in &counts {
            prop_assert!(c < expect * 4, "bucket count {c} vs expectation {expect}");
        }
    }
}
