#![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]

//! Scripted scenarios verifying the paper's Algorithm 1 semantics and the
//! §3.7 extensions, packet by packet.

use netclone_asic::{DataPlane, EmissionSink, PortId};
use netclone_core::{NetCloneConfig, NetCloneSwitch, RequestIdMode, Scheduling};
use netclone_proto::{CloneStatus, Ipv4, MsgType, NetCloneHdr, PacketMeta, ServerId, ServerState};

const CLIENT_PORT: PortId = 2;

fn server_port(sid: ServerId) -> PortId {
    10 + sid
}

fn build_switch(n: u16, cfg: NetCloneConfig) -> NetCloneSwitch {
    let mut sw = NetCloneSwitch::new(cfg);
    for sid in 0..n {
        sw.add_server(sid, Ipv4::server(sid), server_port(sid))
            .unwrap();
    }
    sw.add_client(Ipv4::client(0), CLIENT_PORT).unwrap();
    sw
}

fn request(grp: u16, idx: u8) -> PacketMeta {
    PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(grp, idx, 0, 0), 84)
}

/// Builds the response a server would send for an emitted request.
fn response_for(emitted: &PacketMeta, sid: ServerId, state: u16) -> PacketMeta {
    let nc = NetCloneHdr::response_to(&emitted.nc, sid, ServerState(state));
    PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84)
}

fn ingest(sw: &mut NetCloneSwitch, pkt: PacketMeta) -> EmissionSink {
    sw.process_collected(pkt, CLIENT_PORT, 0)
}

#[test]
fn idle_pair_is_cloned_with_shared_request_id() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    let (s1, s2) = sw.group(0).unwrap();
    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(out.len(), 2, "original + clone");
    let orig = &out[0];
    let clone = &out[1];
    assert_eq!(orig.pkt.nc.clo, CloneStatus::ClonedOriginal);
    assert_eq!(clone.pkt.nc.clo, CloneStatus::Clone);
    assert_eq!(orig.pkt.nc.req_id, clone.pkt.nc.req_id);
    assert_ne!(
        orig.pkt.nc.req_id, 0,
        "request IDs never collide with the empty sentinel"
    );
    assert_eq!(orig.port, server_port(s1));
    assert_eq!(clone.port, server_port(s2));
    assert_eq!(orig.pkt.dst_ip, Ipv4::server(s1));
    assert_eq!(clone.pkt.dst_ip, Ipv4::server(s2));
    // The clone pays the recirculation: strictly larger in-switch latency.
    assert!(clone.latency_ns > orig.latency_ns);
    assert_eq!(sw.counters().cloned, 1);
}

#[test]
fn request_ids_are_monotonic() {
    let mut sw = build_switch(2, NetCloneConfig::default());
    let a = ingest(&mut sw, request(0, 0))[0].pkt.nc.req_id;
    let b = ingest(&mut sw, request(1, 0))[0].pkt.nc.req_id;
    let c = ingest(&mut sw, request(0, 0))[0].pkt.nc.req_id;
    assert_eq!(b, a + 1);
    assert_eq!(c, b + 1);
}

#[test]
fn busy_candidate_suppresses_cloning_and_routes_to_first() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    let (s1, s2) = sw.group(0).unwrap();
    // A response from s2 reporting a non-empty queue marks it busy.
    let seed = ingest(&mut sw, request(1, 0)); // any request to learn hdr shape
    let resp = response_for(&seed[0].pkt, s2, 3);
    ingest(&mut sw, resp);
    assert_eq!(sw.tracked_state(s2).unwrap().queue_len(), 3);

    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(out.len(), 1, "no clone when a candidate is busy");
    assert_eq!(out[0].pkt.nc.clo, CloneStatus::NotCloned);
    assert_eq!(out[0].port, server_port(s1), "base design forwards to Srv1");
    assert!(sw.counters().clone_skipped_busy >= 1);
}

#[test]
fn responses_update_both_state_tables() {
    let mut sw = build_switch(3, NetCloneConfig::default());
    let out = ingest(&mut sw, request(0, 0));
    let resp = response_for(&out[0].pkt, 1, 7);
    ingest(&mut sw, resp);
    assert_eq!(sw.tracked_state(1).unwrap().queue_len(), 7);
    assert!(
        sw.state_tables_consistent(),
        "shadow must mirror state (§3.4)"
    );
    // Back to idle.
    let resp = response_for(&out[0].pkt, 1, 0);
    ingest(&mut sw, resp);
    assert!(sw.tracked_state(1).unwrap().is_idle());
    assert!(sw.state_tables_consistent());
}

#[test]
fn slower_response_is_filtered_and_slot_is_cleared() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    let out = ingest(&mut sw, request(0, 1));
    assert_eq!(out.len(), 2);
    let (s1, s2) = sw.group(0).unwrap();

    // Faster response (from the original) is forwarded to the client.
    let fast = response_for(&out[0].pkt, s1, 0);
    let fwd = ingest(&mut sw, fast);
    assert_eq!(fwd.len(), 1);
    assert_eq!(fwd[0].port, CLIENT_PORT);

    // Slower response (from the clone) is dropped.
    let slow = response_for(&out[1].pkt, s2, 0);
    let dropped = ingest(&mut sw, slow);
    assert!(
        dropped.is_empty(),
        "redundant slower response must be filtered"
    );
    assert_eq!(sw.counters().responses_filtered, 1);

    // The slot was cleared (line 20): a hypothetical third response with
    // the same ID would be treated as "faster" again, not dropped.
    let third = response_for(&out[0].pkt, s1, 0);
    assert_eq!(ingest(&mut sw, third).len(), 1);
}

#[test]
fn non_cloned_responses_bypass_the_filter() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    // Make every server busy so nothing clones.
    for sid in 0..4u16 {
        let probe = ingest(&mut sw, request(0, 0));
        let r = response_for(&probe[0].pkt, sid, 5);
        ingest(&mut sw, r);
    }
    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].pkt.nc.clo, CloneStatus::NotCloned);
    // Even a duplicate delivery of the same non-cloned response passes the
    // filter untouched (CLO = 0 skips lines 17–25).
    let resp = response_for(&out[0].pkt, 0, 5);
    assert_eq!(ingest(&mut sw, resp).len(), 1);
    assert_eq!(ingest(&mut sw, resp).len(), 1);
    assert_eq!(sw.counters().responses_filtered, 0);
}

#[test]
fn writes_are_never_cloned() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    let mut pkt = request(0, 0);
    // Clients mark non-cloneable requests (writes) with STATE=1 (§5.5).
    pkt.nc.state = ServerState(1);
    let out = ingest(&mut sw, pkt);
    assert_eq!(out.len(), 1, "writes must not be cloned");
    assert_eq!(out[0].pkt.nc.clo, CloneStatus::NotCloned);
    assert_eq!(sw.counters().clone_skipped_uncloneable, 1);
    assert_eq!(sw.counters().cloned, 0);
}

#[test]
fn filtering_can_be_disabled_for_the_ablation() {
    let mut cfg = NetCloneConfig::default();
    cfg.filtering_enabled = false;
    let mut sw = build_switch(4, cfg);
    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(out.len(), 2);
    let (s1, s2) = sw.group(0).unwrap();
    let r1 = ingest(&mut sw, response_for(&out[0].pkt, s1, 0));
    let r2 = ingest(&mut sw, response_for(&out[1].pkt, s2, 0));
    assert_eq!(r1.len() + r2.len(), 2, "both responses reach the client");
    assert_eq!(sw.counters().responses_filtered, 0);
}

#[test]
fn cloning_can_be_disabled() {
    let mut cfg = NetCloneConfig::default();
    cfg.cloning_enabled = false;
    let mut sw = build_switch(4, cfg);
    for grp in 0..8 {
        let out = ingest(&mut sw, request(grp % 12, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pkt.nc.clo, CloneStatus::NotCloned);
    }
    assert_eq!(sw.counters().cloned, 0);
}

#[test]
fn racksched_fallback_joins_the_shorter_queue() {
    let mut cfg = NetCloneConfig::default();
    cfg.scheduling = Scheduling::RackSched;
    let mut sw = build_switch(4, cfg);
    let (s1, s2) = sw.group(0).unwrap();
    // s1 long queue, s2 short (but busy — so no cloning).
    let probe = ingest(&mut sw, request(2, 0));
    ingest(&mut sw, response_for(&probe[0].pkt, s1, 5));
    ingest(&mut sw, response_for(&probe[0].pkt, s2, 1));

    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].port,
        server_port(s2),
        "JSQ must pick the shorter queue"
    );
    assert!(sw.counters().jsq_fallbacks >= 1);

    // Both empty → still clones as usual (§3.7).
    ingest(&mut sw, response_for(&probe[0].pkt, s1, 0));
    ingest(&mut sw, response_for(&probe[0].pkt, s2, 0));
    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(
        out.len(),
        2,
        "RackSched integration still clones on idle pairs"
    );
}

#[test]
fn multirack_gate_passes_foreign_packets_through() {
    let mut sw = build_switch(4, NetCloneConfig::default()); // our switch_id = 1
                                                             // A request already stamped by another ToR (switch 7), already addressed.
    let mut pkt = request(0, 0);
    pkt.nc.switch_id = 7;
    pkt.dst_ip = Ipv4::server(2);
    let out = ingest(&mut sw, pkt);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].port, server_port(2), "plain L3 routing only");
    assert_eq!(out[0].pkt.nc.req_id, 0, "no NetClone processing");
    assert_eq!(sw.counters().requests, 0);
    assert_eq!(sw.counters().routed_plain, 1);

    // A foreign response: no state update, no filtering.
    let mut resp = PacketMeta::netclone_response(
        Ipv4::server(2),
        Ipv4::client(0),
        NetCloneHdr {
            msg_type: MsgType::Resp,
            req_id: 99,
            grp: 0,
            sid: 2,
            state: ServerState(9),
            clo: CloneStatus::ClonedOriginal,
            idx: 0,
            switch_id: 7,
            client_id: 0,
            client_seq: 0,
        },
        84,
    );
    resp.l4_dport = netclone_proto::NETCLONE_UDP_PORT;
    let out = ingest(&mut sw, resp);
    assert_eq!(out.len(), 1);
    assert!(
        sw.tracked_state(2).unwrap().is_idle(),
        "foreign state not absorbed"
    );
}

#[test]
fn non_netclone_traffic_uses_plain_routing() {
    let mut sw = build_switch(2, NetCloneConfig::default());
    let mut pkt = request(0, 0);
    pkt.l4_dport = 53;
    pkt.dst_ip = Ipv4::server(1);
    let out = ingest(&mut sw, pkt);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].port, server_port(1));
    assert_eq!(sw.counters().routed_plain, 1);
    // Unroutable destination → dropped.
    let mut pkt = request(0, 0);
    pkt.l4_dport = 53;
    pkt.dst_ip = Ipv4::new(203, 0, 113, 9);
    assert!(ingest(&mut sw, pkt).is_empty());
    assert_eq!(sw.counters().dropped_unroutable, 1);
}

#[test]
fn unknown_group_is_dropped() {
    let mut sw = build_switch(2, NetCloneConfig::default());
    let out = ingest(&mut sw, request(999, 0));
    assert!(out.is_empty());
    assert_eq!(sw.counters().dropped_unroutable, 1);
}

#[test]
fn soft_state_reset_models_a_power_cycle() {
    let mut sw = build_switch(4, NetCloneConfig::default());
    // Learn some state.
    let out = ingest(&mut sw, request(0, 0));
    ingest(&mut sw, response_for(&out[0].pkt, 0, 9));
    let id_before = out[0].pkt.nc.req_id;
    assert!(!sw.tracked_state(0).unwrap().is_idle());

    sw.reset_soft_state();

    // Registers cleared: states idle again, sequence restarted (§3.6).
    assert!(sw.tracked_state(0).unwrap().is_idle());
    let out = ingest(&mut sw, request(0, 0));
    assert_eq!(
        out[0].pkt.nc.req_id, 1,
        "sequence restarts from 0 → first ID 1"
    );
    assert!(id_before >= 1);
    // Match-action tables survive: groups are still installed.
    assert_eq!(sw.num_groups(), 12);
}

#[test]
fn externally_recirculated_clone_is_finished_on_reentry() {
    // A soft switch that physically recirculates (netclone-net) re-injects
    // the CLO=1 copy on the loopback port; the program must finish it.
    let mut sw = build_switch(4, NetCloneConfig::default());
    let recirc = sw.config().recirc_port;
    let mut pkt = request(0, 0);
    pkt.nc.clo = CloneStatus::ClonedOriginal;
    pkt.nc.sid = 3;
    pkt.nc.req_id = 42;
    let out = sw.process_collected(pkt, recirc, 0);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].pkt.nc.clo, CloneStatus::Clone);
    assert_eq!(out[0].port, server_port(3));
    assert_eq!(out[0].pkt.dst_ip, Ipv4::server(3));
    assert_eq!(
        out[0].pkt.nc.req_id, 42,
        "request ID must not be reassigned"
    );
}

#[test]
fn multipacket_affinity_clones_followup_fragments() {
    let mut cfg = NetCloneConfig::default();
    cfg.multi_packet_enabled = true;
    let mut sw = build_switch(4, cfg);

    // Fragment 1 of message (client 3, seq 100) clones while idle.
    let mut frag1 = request(0, 0);
    frag1.nc.client_id = 3;
    frag1.nc.client_seq = 100;
    let out = ingest(&mut sw, frag1);
    assert_eq!(out.len(), 2);

    // Every server turns busy.
    for sid in 0..4u16 {
        ingest(&mut sw, response_for(&out[0].pkt, sid, 4));
    }

    // Fragment 2 of the SAME message must still clone (§3.7: "every packet
    // of a cloned request should be cloned regardless of system load").
    let mut frag2 = request(0, 0);
    frag2.nc.client_id = 3;
    frag2.nc.client_seq = 100;
    let out2 = ingest(&mut sw, frag2);
    assert_eq!(out2.len(), 2, "affinity must force the clone");
    assert_eq!(sw.counters().clone_forced_multipacket, 1);

    // A different message under load does not clone.
    let mut other = request(0, 0);
    other.nc.client_id = 3;
    other.nc.client_seq = 101;
    assert_eq!(ingest(&mut sw, other).len(), 1);
}

#[test]
fn lamport_request_ids_are_stable_across_retransmissions() {
    let mut cfg = NetCloneConfig::default();
    cfg.req_id_mode = RequestIdMode::ClientLamport;
    let mut sw = build_switch(4, cfg);
    let mut first = request(0, 0);
    first.nc.client_id = 9;
    first.nc.client_seq = 1234;
    let mut retx = first;
    let id1 = ingest(&mut sw, first)[0].pkt.nc.req_id;
    retx.nc.client_seq = 1234; // identical retransmission
    let id2 = ingest(&mut sw, retx)[0].pkt.nc.req_id;
    assert_eq!(
        id1, id2,
        "TCP retransmissions must keep one request ID (§3.7)"
    );
    // Different request → different ID.
    let mut next = request(0, 0);
    next.nc.client_id = 9;
    next.nc.client_seq = 1235;
    assert_ne!(ingest(&mut sw, next)[0].pkt.nc.req_id, id1);
}
