//! Property tests for [`SwitchCounters`] merging.
//!
//! The sharded simulator leans on merge being **order-insensitive**: the
//! spine's fabric-wide window is assembled from one counter replica per
//! shard, and the per-switch vector is summed into the fabric total, in
//! whatever order the merge code walks them. These properties pin that
//! down: merge is commutative and associative (it is field-wise `u64`
//! addition), with `default()` as the identity, and `Sum` matches
//! pairwise merging.

use netclone_core::SwitchCounters;
use proptest::prelude::*;

fn counters() -> impl Strategy<Value = SwitchCounters> {
    // Small enough that merging a handful can never overflow a u64.
    let f = 0u64..1u64 << 40;
    (
        (
            f.clone(),
            f.clone(),
            f.clone(),
            f.clone(),
            f.clone(),
            f.clone(),
        ),
        (f.clone(), f.clone(), f.clone(), f.clone(), f.clone(), f),
    )
        .prop_map(|((a, b, c, d, e, g), (h, i, j, k, l, m))| SwitchCounters {
            requests: a,
            cloned: b,
            clone_skipped_busy: c,
            clone_skipped_uncloneable: d,
            clone_forced_multipacket: e,
            recirculated: g,
            responses: h,
            responses_filtered: i,
            filter_overwrites: j,
            routed_plain: k,
            dropped_unroutable: l,
            jsq_fallbacks: m,
        })
}

fn merged(a: &SwitchCounters, b: &SwitchCounters) -> SwitchCounters {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in counters(), b in counters()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in counters(), b in counters(), c in counters()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn default_is_the_merge_identity(a in counters()) {
        prop_assert_eq!(merged(&a, &SwitchCounters::default()), a);
        prop_assert_eq!(merged(&SwitchCounters::default(), &a), a);
    }

    #[test]
    fn sum_matches_pairwise_merge_in_any_order(
        mut v in proptest::collection::vec(counters(), 0..8),
        rot in 0usize..8,
    ) {
        let summed: SwitchCounters = v.iter().sum();
        let folded = v
            .iter()
            .fold(SwitchCounters::default(), |acc, c| merged(&acc, c));
        prop_assert_eq!(summed, folded);
        // Order-insensitive: any rotation sums to the same totals.
        if !v.is_empty() {
            let r = rot % v.len();
            v.rotate_left(r);
            let rotated: SwitchCounters = v.iter().sum();
            prop_assert_eq!(summed, rotated);
        }
    }
}
