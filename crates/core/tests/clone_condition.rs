#![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]

//! Tests of the cloning-condition generalisation (§3.4's rejected
//! threshold alternative, kept as an ablation knob).

use netclone_asic::DataPlane;
use netclone_core::{CloneCondition, NetCloneConfig, NetCloneSwitch};
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, ServerState};

#[test]
fn condition_semantics() {
    assert!(CloneCondition::BothIdle.allows(0, 0));
    assert!(!CloneCondition::BothIdle.allows(0, 1));
    assert!(!CloneCondition::BothIdle.allows(3, 0));
    // QueueBelow(1) is exactly BothIdle.
    for (a, b) in [(0, 0), (0, 1), (1, 0), (2, 2)] {
        assert_eq!(
            CloneCondition::QueueBelow(1).allows(a, b),
            CloneCondition::BothIdle.allows(a, b)
        );
    }
    assert!(CloneCondition::QueueBelow(3).allows(2, 2));
    assert!(!CloneCondition::QueueBelow(3).allows(3, 0));
}

#[test]
fn queue_below_zero_is_rejected() {
    let mut cfg = NetCloneConfig::default();
    cfg.clone_condition = CloneCondition::QueueBelow(0);
    assert!(cfg.validate().is_err());
}

fn build(cond: CloneCondition) -> NetCloneSwitch {
    let mut cfg = NetCloneConfig::default();
    cfg.clone_condition = cond;
    let mut sw = NetCloneSwitch::new(cfg);
    for sid in 0..4u16 {
        sw.add_server(sid, Ipv4::server(sid), 10 + sid).unwrap();
    }
    sw.add_client(Ipv4::client(0), 100).unwrap();
    sw
}

fn mark_busy(sw: &mut NetCloneSwitch, sid: u16, qlen: u16) {
    let probe = sw.process_collected(
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(1, 0, 0, 0), 84),
        100,
        0,
    );
    let nc = NetCloneHdr::response_to(&probe[0].pkt.nc, sid, ServerState(qlen));
    let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
    sw.process_collected(resp, 10, 0);
}

#[test]
fn threshold_clones_through_small_queues() {
    let mut sw = build(CloneCondition::QueueBelow(3));
    let (s1, s2) = sw.group(0).unwrap();
    mark_busy(&mut sw, s1, 2);
    mark_busy(&mut sw, s2, 2);
    // BothIdle would refuse; QueueBelow(3) clones.
    let out = sw.process_collected(
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84),
        100,
        0,
    );
    assert_eq!(
        out.len(),
        2,
        "threshold condition must clone through qlen 2"
    );

    mark_busy(&mut sw, s1, 3);
    let out = sw.process_collected(
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84),
        100,
        0,
    );
    assert_eq!(out.len(), 1, "qlen 3 exceeds the threshold");
}

#[test]
fn default_condition_matches_the_paper() {
    let mut sw = build(CloneCondition::BothIdle);
    let (s1, _s2) = sw.group(0).unwrap();
    mark_busy(&mut sw, s1, 1);
    let out = sw.process_collected(
        PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84),
        100,
        0,
    );
    assert_eq!(out.len(), 1, "any non-empty queue suppresses cloning");
}
