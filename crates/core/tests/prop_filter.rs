#![allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]

//! Property tests for the response-filtering and state-tracking invariants
//! under arbitrary interleavings.

use netclone_asic::DataPlane;
use netclone_core::{NetCloneConfig, NetCloneSwitch};
use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta, ServerState};
use proptest::prelude::*;

const CLIENT_PORT: u16 = 2;

fn build(n: u16) -> NetCloneSwitch {
    let mut sw = NetCloneSwitch::new(NetCloneConfig::default());
    for sid in 0..n {
        sw.add_server(sid, Ipv4::server(sid), 10 + sid).unwrap();
    }
    sw.add_client(Ipv4::client(0), CLIENT_PORT).unwrap();
    sw
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch of cloned requests and any interleaving of their
    /// responses, the client receives at least one and at most two
    /// responses per request, and forwarded + filtered = total.
    #[test]
    fn client_always_gets_an_answer(
        n_requests in 1usize..40,
        idxs in proptest::collection::vec(any::<u8>(), 40),
        order_seed in any::<u64>(),
    ) {
        let mut sw = build(6);
        let mut pending = Vec::new(); // (req_id, response pkt)
        for i in 0..n_requests {
            let grp = (i % sw.num_groups() as usize) as u16;
            let pkt = PacketMeta::netclone_request(
                Ipv4::client(0),
                NetCloneHdr::request(grp, idxs[i], 0, i as u32),
                84,
            );
            let out = sw.process_collected(pkt, CLIENT_PORT, 0);
            // All servers stay tracked-idle (no responses carry busy
            // states), so every request clones.
            prop_assert_eq!(out.len(), 2);
            for e in out {
                let nc = NetCloneHdr::response_to(&e.pkt.nc, e.pkt.nc.sid, ServerState(0));
                let resp = PacketMeta::netclone_response(
                    e.pkt.dst_ip,
                    Ipv4::client(0),
                    nc,
                    84,
                );
                pending.push((e.pkt.nc.req_id, resp));
            }
        }

        // Deterministic shuffle of response order.
        let mut rng_state = order_seed | 1;
        for i in (1..pending.len()).rev() {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % (i + 1);
            pending.swap(i, j);
        }

        let mut forwarded = std::collections::HashMap::new();
        let total = pending.len() as u64;
        for (req_id, resp) in pending {
            let out = sw.process_collected(resp, 10, 0);
            if !out.is_empty() {
                *forwarded.entry(req_id).or_insert(0u32) += 1;
            }
        }
        for (&req_id, &count) in &forwarded {
            prop_assert!(count <= 2, "req {req_id} forwarded {count} times");
        }
        prop_assert_eq!(forwarded.len(), n_requests,
            "every request must deliver at least one response");
        let fwd_total: u32 = forwarded.values().sum();
        prop_assert_eq!(
            fwd_total as u64 + sw.counters().responses_filtered,
            total
        );
    }

    /// The state table and its shadow stay identical under any packet mix
    /// (the §3.4 consistency argument).
    #[test]
    fn state_and_shadow_never_diverge(
        script in proptest::collection::vec((0u16..6, 0u16..10, any::<bool>()), 1..100)
    ) {
        let mut sw = build(6);
        let mut last_req: Option<PacketMeta> = None;
        for (sid, qlen, send_request) in script {
            if send_request || last_req.is_none() {
                let pkt = PacketMeta::netclone_request(
                    Ipv4::client(0),
                    NetCloneHdr::request(sid % sw.num_groups(), 0, 0, 0),
                    84,
                );
                let out = sw.process_collected(pkt, CLIENT_PORT, 0);
                if let Some(e) = out.first() {
                    last_req = Some(e.pkt);
                }
            }
            if let Some(req) = last_req {
                let nc = NetCloneHdr::response_to(&req.nc, sid, ServerState(qlen));
                let resp = PacketMeta::netclone_response(
                    Ipv4::server(sid),
                    Ipv4::client(0),
                    nc,
                    84,
                );
                sw.process_collected(resp, 10, 0);
            }
            prop_assert!(sw.state_tables_consistent());
        }
    }

    /// Tracked state equals the last piggybacked state for each server,
    /// regardless of interleaving.
    #[test]
    fn tracked_state_is_last_writer_wins(
        updates in proptest::collection::vec((0u16..4, 0u16..8), 1..60)
    ) {
        let mut sw = build(4);
        let probe = sw.process_collected(
            PacketMeta::netclone_request(
                Ipv4::client(0),
                NetCloneHdr::request(0, 0, 0, 0),
                84,
            ),
            CLIENT_PORT,
            0,
        );
        let req = probe[0].pkt;
        let mut expected = [0u16; 4];
        for (sid, qlen) in updates {
            let nc = NetCloneHdr::response_to(&req.nc, sid, ServerState(qlen));
            let resp = PacketMeta::netclone_response(Ipv4::server(sid), Ipv4::client(0), nc, 84);
            sw.process_collected(resp, 10, 0);
            expected[sid as usize] = qlen;
        }
        for sid in 0..4u16 {
            prop_assert_eq!(
                sw.tracked_state(sid).unwrap().queue_len(),
                expected[sid as usize]
            );
        }
    }
}
