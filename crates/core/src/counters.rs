//! Data-plane counters (the switch equivalents of P4 counters), used by
//! tests, examples, and the experiment harness to observe cloning and
//! filtering behaviour.

/// Event counters maintained by the NetClone program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Fresh (non-recirculated) NetClone requests processed.
    pub requests: u64,
    /// Requests that were cloned (both candidates tracked idle).
    pub cloned: u64,
    /// Requests not cloned because at least one candidate was tracked busy.
    pub clone_skipped_busy: u64,
    /// Requests not cloned because the client marked them non-cloneable
    /// (writes, §5.5).
    pub clone_skipped_uncloneable: u64,
    /// Requests forced to clone by the multi-packet affinity table (§3.7).
    pub clone_forced_multipacket: u64,
    /// Recirculated clone passes completed.
    pub recirculated: u64,
    /// Responses processed.
    pub responses: u64,
    /// Redundant (slower) responses dropped by the filter.
    pub responses_filtered: u64,
    /// Filter-slot overwrites of a *different* live request ID (hash
    /// collision or lost-response reclamation, §3.5/§3.6).
    pub filter_overwrites: u64,
    /// Packets forwarded by the plain L2/L3 path (non-NetClone traffic and
    /// multi-rack pass-through).
    pub routed_plain: u64,
    /// Packets dropped for lack of a route/group/address entry.
    pub dropped_unroutable: u64,
    /// RackSched-mode requests steered to the shorter queue (fallback
    /// path, §3.7).
    pub jsq_fallbacks: u64,
}

impl SwitchCounters {
    /// Fraction of fresh requests that were cloned (0 when none seen).
    pub fn clone_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cloned as f64 / self.requests as f64
        }
    }

    /// The counter deltas accumulated since `base` was snapshotted —
    /// every field, so windowed results never mix window-only and
    /// since-boot counts. Saturating: a reset between the snapshots
    /// yields zeros rather than wrap-around garbage.
    pub fn since(&self, base: &SwitchCounters) -> SwitchCounters {
        SwitchCounters {
            requests: self.requests.saturating_sub(base.requests),
            cloned: self.cloned.saturating_sub(base.cloned),
            clone_skipped_busy: self
                .clone_skipped_busy
                .saturating_sub(base.clone_skipped_busy),
            clone_skipped_uncloneable: self
                .clone_skipped_uncloneable
                .saturating_sub(base.clone_skipped_uncloneable),
            clone_forced_multipacket: self
                .clone_forced_multipacket
                .saturating_sub(base.clone_forced_multipacket),
            recirculated: self.recirculated.saturating_sub(base.recirculated),
            responses: self.responses.saturating_sub(base.responses),
            responses_filtered: self
                .responses_filtered
                .saturating_sub(base.responses_filtered),
            filter_overwrites: self
                .filter_overwrites
                .saturating_sub(base.filter_overwrites),
            routed_plain: self.routed_plain.saturating_sub(base.routed_plain),
            dropped_unroutable: self
                .dropped_unroutable
                .saturating_sub(base.dropped_unroutable),
            jsq_fallbacks: self.jsq_fallbacks.saturating_sub(base.jsq_fallbacks),
        }
    }

    /// Fraction of responses that were filtered.
    pub fn filter_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.responses_filtered as f64 / self.responses as f64
        }
    }

    /// Adds `other` into `self`, field by field — fabric-wide totals are
    /// the merge of every per-switch counter snapshot (multi-rack
    /// deployments run one engine per switch, §3.7).
    pub fn merge(&mut self, other: &SwitchCounters) {
        self.requests += other.requests;
        self.cloned += other.cloned;
        self.clone_skipped_busy += other.clone_skipped_busy;
        self.clone_skipped_uncloneable += other.clone_skipped_uncloneable;
        self.clone_forced_multipacket += other.clone_forced_multipacket;
        self.recirculated += other.recirculated;
        self.responses += other.responses;
        self.responses_filtered += other.responses_filtered;
        self.filter_overwrites += other.filter_overwrites;
        self.routed_plain += other.routed_plain;
        self.dropped_unroutable += other.dropped_unroutable;
        self.jsq_fallbacks += other.jsq_fallbacks;
    }
}

/// Summing per-switch snapshots yields the fabric-wide totals.
impl<'a> std::iter::Sum<&'a SwitchCounters> for SwitchCounters {
    fn sum<I: Iterator<Item = &'a SwitchCounters>>(iter: I) -> Self {
        let mut total = SwitchCounters::default();
        for c in iter {
            total.merge(c);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let c = SwitchCounters::default();
        assert_eq!(c.clone_rate(), 0.0);
        assert_eq!(c.filter_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let c = SwitchCounters {
            requests: 10,
            cloned: 4,
            responses: 14,
            responses_filtered: 4,
            ..Default::default()
        };
        assert!((c.clone_rate() - 0.4).abs() < 1e-12);
        assert!((c.filter_rate() - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_sum_accumulate_every_field() {
        let a = SwitchCounters {
            requests: 1,
            cloned: 2,
            clone_skipped_busy: 3,
            clone_skipped_uncloneable: 4,
            clone_forced_multipacket: 5,
            recirculated: 6,
            responses: 7,
            responses_filtered: 8,
            filter_overwrites: 9,
            routed_plain: 10,
            dropped_unroutable: 11,
            jsq_fallbacks: 12,
        };
        let mut m = a;
        m.merge(&a);
        let total: SwitchCounters = [a, a, a].iter().sum();
        assert_eq!(total.requests, 3);
        assert_eq!(total.jsq_fallbacks, 36);
        assert_eq!(m.requests, 2);
        assert_eq!(m.cloned, 4);
        assert_eq!(m.routed_plain, 20);
        assert_eq!(m.jsq_fallbacks, 24);
    }
}
