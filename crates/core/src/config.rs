//! Configuration of the NetClone switch program.

use netclone_asic::{AsicSpec, PortId};
use netclone_proto::SwitchId;

/// How the switch picks a destination when it does **not** clone.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scheduling {
    /// Forward to the group's first candidate (the base design, §3.3 —
    /// group randomisation at the client supplies the load balancing).
    #[default]
    Random,
    /// RackSched integration (§3.7): the state tables hold queue lengths;
    /// when not cloning, fall back to join-the-shortest-queue between the
    /// two candidates (power-of-two choices).
    RackSched,
}

/// When the switch considers a candidate pair cloneable (§3.4).
///
/// The paper's design clones only when both tracked queues are empty
/// ([`CloneCondition::BothIdle`]). §3.4 also sketches the alternative it
/// rejected — cloning below a load threshold, "however, this requires
/// complex performance profiling to determine the threshold" — which is
/// implemented here as [`CloneCondition::QueueBelow`] so the ablation can
/// demonstrate exactly that sensitivity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CloneCondition {
    /// Clone iff both tracked queues are empty (the paper's design).
    #[default]
    BothIdle,
    /// Clone iff both tracked queue lengths are strictly below the
    /// threshold. `QueueBelow(1)` ≡ `BothIdle`.
    QueueBelow(u16),
}

impl CloneCondition {
    /// Evaluates the condition against two tracked queue lengths.
    pub fn allows(self, q1: u16, q2: u16) -> bool {
        match self {
            CloneCondition::BothIdle => q1 == 0 && q2 == 0,
            CloneCondition::QueueBelow(t) => q1 < t && q2 < t,
        }
    }
}

/// How request IDs are assigned (§3.7 "Protocol support").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RequestIdMode {
    /// The switch's global sequence register (the UDP base design).
    #[default]
    SwitchSequence,
    /// Lamport-style `(CLIENT_ID, CLIENT_SEQ)` tuple, so TCP
    /// retransmissions of one request keep one request ID.
    ClientLamport,
}

/// Static configuration of one NetClone switch.
#[derive(Clone, Debug)]
pub struct NetCloneConfig {
    /// The ASIC capacity model to lay the program out on.
    pub spec: AsicSpec,
    /// Number of filter tables (the paper's prototype uses 2; must be
    /// ≥ 1 and fit the stage budget).
    pub num_filter_tables: usize,
    /// log2 of slots per filter table (the paper uses 2^17).
    pub filter_slots_log2: u8,
    /// Maximum servers the state tables are sized for.
    pub max_servers: usize,
    /// Destination selection when not cloning.
    pub scheduling: Scheduling,
    /// When a candidate pair is cloneable.
    pub clone_condition: CloneCondition,
    /// Request-ID assignment mode.
    pub req_id_mode: RequestIdMode,
    /// Master switch for cloning (disabling yields a plain scheduler).
    pub cloning_enabled: bool,
    /// Master switch for response filtering (Fig. 15 ablation).
    pub filtering_enabled: bool,
    /// Multi-packet request affinity (§3.7): packets of an already-cloned
    /// message are cloned regardless of tracked state.
    pub multi_packet_enabled: bool,
    /// This switch's identity for multi-rack gating (§3.7). Any non-zero
    /// value; single-rack deployments can leave the default.
    pub switch_id: SwitchId,
    /// The loopback port used for recirculation (§3.4).
    pub recirc_port: PortId,
}

impl Default for NetCloneConfig {
    fn default() -> Self {
        NetCloneConfig {
            spec: AsicSpec::tofino(),
            num_filter_tables: 2,
            filter_slots_log2: 17,
            max_servers: 256,
            scheduling: Scheduling::Random,
            clone_condition: CloneCondition::BothIdle,
            req_id_mode: RequestIdMode::SwitchSequence,
            cloning_enabled: true,
            filtering_enabled: true,
            multi_packet_enabled: false,
            switch_id: 1,
            recirc_port: 196,
        }
    }
}

impl NetCloneConfig {
    /// The paper's prototype configuration (2 × 2^17 filter tables, random
    /// scheduling, cloning + filtering on).
    pub fn paper_prototype() -> Self {
        Self::default()
    }

    /// Slots per filter table.
    pub fn filter_slots(&self) -> usize {
        1usize << self.filter_slots_log2
    }

    /// Validates invariants that must hold before building the program.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_filter_tables == 0 {
            return Err("need at least one filter table".into());
        }
        if self.switch_id == 0 {
            return Err("switch_id 0 is reserved for 'unstamped' (§3.7)".into());
        }
        if self.max_servers == 0 || self.max_servers > u16::MAX as usize {
            return Err(format!("max_servers {} out of range", self.max_servers));
        }
        if self.clone_condition == CloneCondition::QueueBelow(0) {
            return Err("QueueBelow(0) never clones; use cloning_enabled=false".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = NetCloneConfig::default();
        assert_eq!(c.num_filter_tables, 2);
        assert_eq!(c.filter_slots(), 1 << 17);
        assert!(c.cloning_enabled);
        assert!(c.filtering_enabled);
        assert_eq!(c.scheduling, Scheduling::Random);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = NetCloneConfig {
            num_filter_tables: 0,
            ..NetCloneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NetCloneConfig {
            switch_id: 0,
            ..NetCloneConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NetCloneConfig {
            max_servers: 0,
            ..NetCloneConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
