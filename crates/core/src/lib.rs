//! # netclone-core
//!
//! The paper's primary contribution: the **NetClone switch data plane**,
//! implemented over the PISA constraints of `netclone-asic`.
//!
//! The program ([`NetCloneSwitch`]) realises Algorithm 1 of the paper:
//!
//! * **Request cloning** — a fresh request gets a switch-assigned request
//!   ID, its group is resolved to a pair of candidate servers, and if *both*
//!   are tracked idle the request is multicast: the original egresses to
//!   server 1 while a copy recirculates through a loopback port to pick up
//!   server 2's address on a second pass (§3.4).
//! * **State tracking** — every response piggybacks its server's queue
//!   state; the switch writes it into the state table *and* its shadow copy
//!   (two tables because one pass cannot read the same table twice — the
//!   §3.4 constraint, enforced by the ASIC model).
//! * **Response filtering** — responses of cloned requests test-and-set a
//!   request-ID fingerprint in one of K hash-indexed filter tables (the
//!   client-chosen `IDX` selects the table, a CRC of `REQ_ID` the slot);
//!   the slower response finds its own ID and is dropped, and overwrites
//!   are permitted so hash collisions and lost responses can never wedge a
//!   slot (§3.5, §3.6).
//!
//! The §3.7 practical extensions are implemented too: RackSched integration
//! (queue-length state + JSQ power-of-two fallback), multi-rack `SWITCH_ID`
//! gating, multi-packet cloned-request affinity, and Lamport-style request
//! IDs for TCP retransmission safety.
//!
//! The control plane ([`control`]) installs servers/clients, rebuilds the
//! group table on server failure (§3.6), and produces the §4.1 resource
//! report.

pub mod config;
pub mod control;
pub mod counters;
pub mod engine;
pub mod groups;
pub mod program;

pub use config::{CloneCondition, NetCloneConfig, RequestIdMode, Scheduling};
pub use counters::SwitchCounters;
pub use engine::{EngineError, SwitchEngine};
pub use groups::build_groups;
pub use program::NetCloneSwitch;
