//! The [`SwitchEngine`] trait: the single control-plane + data-plane
//! contract every switch program implements and every frontend drives.
//!
//! [`netclone_asic::DataPlane`] covers the packet path (process, soft-state
//! reset). `SwitchEngine` extends it with the operations a *deployment*
//! needs — endpoint registration, failure handling, group management, and
//! counter observation — so the discrete-event simulator
//! (`netclone-cluster`), the real-socket soft switch (`netclone-net`), and
//! any future frontend all hold a `Box<dyn SwitchEngine>` and execute the
//! identical program. There is exactly one implementation of the NetClone
//! algorithm ([`NetCloneSwitch`]); the compared schemes implement the same
//! trait (see `netclone-policies`), so swapping schemes is swapping
//! engines, never re-implementing dispatch.
//!
//! Not every engine supports every control operation: a plain L3 fabric
//! has no group table. Such operations return
//! [`EngineError::Unsupported`] instead of being compiled into per-scheme
//! `match` arms at every call site.

use netclone_asic::{DataPlane, PortId};
use netclone_proto::{Ipv4, ServerId};

use crate::control::ControlError;
use crate::counters::SwitchCounters;
use crate::program::NetCloneSwitch;

/// Errors returned by [`SwitchEngine`] control-plane operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying control plane rejected the update.
    Control(ControlError),
    /// This engine does not implement the operation (e.g. group
    /// installation on a plain L3 switch).
    Unsupported {
        /// The operation that was requested.
        op: &'static str,
        /// The engine that rejected it ([`DataPlane::name`]).
        engine: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Control(e) => write!(f, "{e}"),
            EngineError::Unsupported { op, engine } => {
                write!(f, "engine {engine} does not support {op}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ControlError> for EngineError {
    fn from(e: ControlError) -> Self {
        EngineError::Control(e)
    }
}

/// A complete switch program: data plane plus control plane.
///
/// `Send` is required because the soft switch runs its engine on a
/// forwarding thread.
pub trait SwitchEngine: DataPlane + Send {
    /// Snapshot of the data-plane counters.
    fn counters(&self) -> SwitchCounters {
        SwitchCounters::default()
    }

    /// Number of installed clone groups (clients draw `GRP` uniformly
    /// from `0..num_groups`). Engines without a group table report 0.
    fn num_groups(&self) -> u16 {
        0
    }

    /// Registers a worker server: its virtual address and egress port.
    fn register_server(&mut self, sid: ServerId, ip: Ipv4, port: PortId)
        -> Result<(), EngineError>;

    /// Removes a failed server so no new requests are steered to it
    /// (§3.6 "Server failures").
    fn deregister_server(&mut self, sid: ServerId) -> Result<(), EngineError> {
        let _ = sid;
        Err(EngineError::Unsupported {
            op: "deregister_server",
            engine: self.name(),
        })
    }

    /// Registers a client endpoint (responses route to it).
    fn register_client(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError>;

    /// Installs a plain L3 route (coordinator hosts, aggregation links).
    fn register_route(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError>;

    /// Replaces the group table with an explicit pair list (ablations).
    fn install_custom_groups(&mut self, pairs: &[(ServerId, ServerId)]) -> Result<(), EngineError> {
        let _ = pairs;
        Err(EngineError::Unsupported {
            op: "install_custom_groups",
            engine: self.name(),
        })
    }
}

impl SwitchEngine for NetCloneSwitch {
    fn counters(&self) -> SwitchCounters {
        *NetCloneSwitch::counters(self)
    }

    fn num_groups(&self) -> u16 {
        NetCloneSwitch::num_groups(self)
    }

    fn register_server(
        &mut self,
        sid: ServerId,
        ip: Ipv4,
        port: PortId,
    ) -> Result<(), EngineError> {
        self.add_server(sid, ip, port).map_err(EngineError::from)
    }

    fn deregister_server(&mut self, sid: ServerId) -> Result<(), EngineError> {
        self.remove_server(sid).map_err(EngineError::from)
    }

    fn register_client(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError> {
        self.add_client(ip, port).map_err(EngineError::from)
    }

    fn register_route(&mut self, ip: Ipv4, port: PortId) -> Result<(), EngineError> {
        self.add_route(ip, port).map_err(EngineError::from)
    }

    fn install_custom_groups(&mut self, pairs: &[(ServerId, ServerId)]) -> Result<(), EngineError> {
        NetCloneSwitch::install_custom_groups(self, pairs).map_err(EngineError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetCloneConfig;
    use netclone_proto::{NetCloneHdr, PacketMeta};

    #[test]
    fn netclone_switch_works_as_a_boxed_engine() {
        let mut engine: Box<dyn SwitchEngine> =
            Box::new(NetCloneSwitch::new(NetCloneConfig::default()));
        for sid in 0..2u16 {
            engine
                .register_server(sid, Ipv4::server(sid), 10 + sid)
                .unwrap();
        }
        engine.register_client(Ipv4::client(0), 100).unwrap();
        assert_eq!(engine.num_groups(), 2);

        let req =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(0, 0, 0, 0), 84);
        let out = engine.process_collected(req, 100, 0);
        assert_eq!(out.len(), 2, "both candidates idle: cloned via the trait");
        assert_eq!(engine.counters().cloned, 1);

        engine.reset_soft_state();
        engine.deregister_server(1).unwrap();
        assert_eq!(engine.num_groups(), 0, "one server left: no pairs");
    }

    #[test]
    fn custom_groups_install_through_the_trait() {
        let mut engine: Box<dyn SwitchEngine> =
            Box::new(NetCloneSwitch::new(NetCloneConfig::default()));
        for sid in 0..3u16 {
            engine
                .register_server(sid, Ipv4::server(sid), 10 + sid)
                .unwrap();
        }
        engine.install_custom_groups(&[(0, 1), (1, 2)]).unwrap();
        assert_eq!(engine.num_groups(), 2);
    }

    #[test]
    fn engine_error_display() {
        let e = EngineError::Unsupported {
            op: "install_custom_groups",
            engine: "PlainL3",
        };
        assert!(e.to_string().contains("PlainL3"));
        let c: EngineError = ControlError::UnknownSid(7).into();
        assert!(c.to_string().contains('7'));
    }
}
