//! The switch control plane.
//!
//! Installs servers and clients, (re)builds the group table, and handles
//! the §3.6 failure procedures: removing a failed server "by updating
//! relevant tables (e.g., the group table and the address table) in the
//! switch data plane", and reinstalling table entries after a switch
//! power-cycle (register soft state is *not* reinstalled — it reconverges
//! from subsequent responses).

use netclone_asic::PortId;
use netclone_proto::{Ipv4, ServerId};

use crate::groups::build_groups;
use crate::program::NetCloneSwitch;

/// Errors returned by control-plane operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlError {
    /// The server ID is outside the state tables' static range.
    SidOutOfRange {
        /// The offending server ID.
        sid: ServerId,
        /// Size of the state tables.
        max: usize,
    },
    /// The server ID is already registered.
    DuplicateSid(ServerId),
    /// The server ID is not registered.
    UnknownSid(ServerId),
    /// A table rejected the update (capacity).
    Table(netclone_asic::AsicError),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::SidOutOfRange { sid, max } => {
                write!(f, "server id {sid} out of range (max {max})")
            }
            ControlError::DuplicateSid(s) => write!(f, "server id {s} already registered"),
            ControlError::UnknownSid(s) => write!(f, "server id {s} not registered"),
            ControlError::Table(e) => write!(f, "table update failed: {e}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl NetCloneSwitch {
    /// Registers a worker server: installs its address/port and rebuilds
    /// the group table over the new server set.
    pub fn add_server(
        &mut self,
        sid: ServerId,
        ip: Ipv4,
        port: PortId,
    ) -> Result<(), ControlError> {
        if sid as usize >= self.cfg.max_servers {
            return Err(ControlError::SidOutOfRange {
                sid,
                max: self.cfg.max_servers,
            });
        }
        if self.servers.contains(&sid) {
            return Err(ControlError::DuplicateSid(sid));
        }
        self.addr_t
            .insert(sid, (ip.0, port))
            .map_err(ControlError::Table)?;
        self.route_t
            .insert(ip.0, port)
            .map_err(ControlError::Table)?;
        self.servers.push(sid);
        self.rebuild_groups()?;
        // A fresh (or recovered) server starts tracked-idle; its first
        // response corrects this if wrong.
        self.state_t.poke(sid as usize, 0);
        self.shadow_t.poke(sid as usize, 0);
        Ok(())
    }

    /// §3.6 "Server failures": removes a failed server from every relevant
    /// table so no new requests (cloned or not) are steered to it.
    pub fn remove_server(&mut self, sid: ServerId) -> Result<(), ControlError> {
        let Some(pos) = self.servers.iter().position(|&s| s == sid) else {
            return Err(ControlError::UnknownSid(sid));
        };
        self.servers.remove(pos);
        self.addr_t.remove(&sid);
        self.rebuild_groups()?;
        Ok(())
    }

    /// Registers a client endpoint (responses route to it).
    pub fn add_client(&mut self, ip: Ipv4, port: PortId) -> Result<(), ControlError> {
        self.route_t.insert(ip.0, port).map_err(ControlError::Table)
    }

    /// Installs a plain L3 route (e.g. toward an aggregation switch in
    /// multi-rack topologies).
    pub fn add_route(&mut self, ip: Ipv4, port: PortId) -> Result<(), ControlError> {
        self.route_t.insert(ip.0, port).map_err(ControlError::Table)
    }

    /// Installs an L2 switching entry (the traditional forwarding base;
    /// the parsed-metadata model routes on L3, so this is capacity/config
    /// fidelity only).
    pub fn add_l2_entry(&mut self, mac: u64, port: PortId) -> Result<(), ControlError> {
        self.mac_t.insert(mac, port).map_err(ControlError::Table)
    }

    /// The registered server set, in registration order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Rebuilds the group table as the ordered 2-permutations of the
    /// current server set (§3.3).
    fn rebuild_groups(&mut self) -> Result<(), ControlError> {
        self.grp_t.clear();
        let pairs = build_groups(&self.servers);
        for (gid, pair) in pairs.into_iter().enumerate() {
            self.grp_t
                .insert(gid as u16, pair)
                .map_err(ControlError::Table)?;
        }
        Ok(())
    }

    /// Control-plane peek at a group entry (tests/diagnostics).
    pub fn group(&self, gid: u16) -> Option<(ServerId, ServerId)> {
        self.grp_t.peek(&gid)
    }

    /// Replaces the group table with an explicit pair list (ablation
    /// support: e.g. unordered C(n,2) groups to demonstrate why the paper
    /// doubles them, §3.3).
    pub fn install_custom_groups(
        &mut self,
        pairs: &[(ServerId, ServerId)],
    ) -> Result<(), ControlError> {
        self.grp_t.clear();
        for (gid, &pair) in pairs.iter().enumerate() {
            self.grp_t
                .insert(gid as u16, pair)
                .map_err(ControlError::Table)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetCloneConfig;

    fn switch_with(n: u16) -> NetCloneSwitch {
        let mut sw = NetCloneSwitch::new(NetCloneConfig::default());
        for sid in 0..n {
            sw.add_server(sid, Ipv4::server(sid), 10 + sid).unwrap();
        }
        sw
    }

    #[test]
    fn adding_servers_builds_ordered_pair_groups() {
        let sw = switch_with(3);
        assert_eq!(sw.num_groups(), 6); // 3 × 2
        let mut firsts = std::collections::HashSet::new();
        for g in 0..6 {
            let (a, b) = sw.group(g).unwrap();
            assert_ne!(a, b);
            firsts.insert(a);
        }
        assert_eq!(firsts.len(), 3, "every server leads some group");
    }

    #[test]
    fn duplicate_and_unknown_sids_are_rejected() {
        let mut sw = switch_with(2);
        assert_eq!(
            sw.add_server(1, Ipv4::server(1), 11),
            Err(ControlError::DuplicateSid(1))
        );
        assert_eq!(sw.remove_server(9), Err(ControlError::UnknownSid(9)));
    }

    #[test]
    fn sid_out_of_range_is_rejected() {
        let cfg = NetCloneConfig {
            max_servers: 4,
            ..NetCloneConfig::default()
        };
        let mut sw = NetCloneSwitch::new(cfg);
        assert!(matches!(
            sw.add_server(4, Ipv4::server(4), 10),
            Err(ControlError::SidOutOfRange { sid: 4, max: 4 })
        ));
    }

    #[test]
    fn removing_a_server_shrinks_the_groups() {
        let mut sw = switch_with(4);
        assert_eq!(sw.num_groups(), 12);
        sw.remove_server(2).unwrap();
        assert_eq!(sw.num_groups(), 6); // 3 servers remain
        for g in 0..6 {
            let (a, b) = sw.group(g).unwrap();
            assert_ne!(a, 2, "failed server must not appear in any group");
            assert_ne!(b, 2);
        }
        assert_eq!(sw.servers(), &[0, 1, 3]);
    }

    #[test]
    fn resource_report_matches_section_4_1() {
        let sw = switch_with(6);
        let r = sw.resource_report();
        // Paper §4.1: 7 stages with two filter tables.
        assert_eq!(r.stages_used, 7);
        // Filter registers ≈ 1.05 MB = two 2^17 × 4 B tables; the register
        // total also counts the small state/shadow/seq/affinity arrays.
        let filter_bytes = 2 * (1 << 17) * 4;
        assert!(r.register_sram_bytes >= filter_bytes);
        assert!(r.register_sram_bytes < filter_bytes + 64 * 1024);
        // The §4.1 utilisation ballparks (calibrated denominators, see
        // AsicSpec docs): SRAM 18.04 %, hash 26.79 %, ALUs 21.43 %,
        // crossbar 12.28 %.
        assert!((15.0..22.0).contains(&r.sram_pct), "SRAM {}%", r.sram_pct);
        assert!((20.0..33.0).contains(&r.hash_pct), "hash {}%", r.hash_pct);
        assert!((15.0..28.0).contains(&r.alu_pct), "ALU {}%", r.alu_pct);
        assert!(
            (8.0..17.0).contains(&r.crossbar_pct),
            "crossbar {}%",
            r.crossbar_pct
        );
        // Register share of switch memory ≈ 4.77 %.
        assert!(
            (4.4..5.4).contains(&r.register_sram_pct),
            "register share {}%",
            r.register_sram_pct
        );
    }
}
