//! The NetClone data-plane program (paper Algorithm 1 + §3.7 extensions).
//!
//! ## Stage layout
//!
//! The program occupies 7 match-action stages with the default two filter
//! tables, matching §4.1:
//!
//! | stage | resources |
//! |-------|-----------|
//! | 0 | `SEQ` register, L3 route table |
//! | 1 | group table `GrpT`, multi-packet hash |
//! | 2 | state table `StateT` |
//! | 3 | shadow table `ShadowT` |
//! | 4 | address table `AddrT`, filter hash, multi-packet affinity table |
//! | 5 | filter table 0 |
//! | 6 | filter table 1 |
//!
//! Note `AddrT` sits *after* the state tables: its action assigns both the
//! destination IP and the egress port for whichever candidate the cloning /
//! JSQ logic selected. (Algorithm 1 reads `AddrT[Srv1]` before the state
//! check because the base design always forwards to server 1 when not
//! cloning; placing the lookup after the decision is equivalent there and
//! also accommodates the RackSched fallback, which may pick server 2 — one
//! of the "several challenges" §3.7 alludes to.)
//!
//! ## Replication
//!
//! Cloning uses multicast + recirculation exactly as §3.4 describes: the
//! original egresses to server 1 immediately; the copy is sent to a
//! loopback port and re-enters the pipeline, where the `CLO=1 ∧ ingress =
//! recirc` pattern marks it `CLO=2`, looks up `AddrT[SID]`, and forwards.
//! The recirculated pass is executed inline here and surfaces as a second
//! [`Emission`] whose latency includes the loopback traversal.

use netclone_asic::resources::{Allocation, ResourceKind};
use netclone_asic::{
    AsicSpec, DataPlane, Emission, EmissionSink, HashUnit, Layout, MatchTable, PacketPass, PortId,
    RegisterArray, ResourceReport,
};
use netclone_proto::{CloneStatus, Ipv4, MsgType, PacketMeta, ReqId, ServerId, ServerState};

use crate::config::{NetCloneConfig, RequestIdMode, Scheduling};
use crate::counters::SwitchCounters;

/// Panic message for pipeline-constraint violations: the program is
/// validated by construction, so any violation is a bug in this crate,
/// not a runtime condition.
const PIPE: &str = "NetClone pipeline violated a PISA constraint (bug in the program layout)";

pub(crate) const STAGE_SEQ: u8 = 0;
pub(crate) const STAGE_ROUTE: u8 = 0;
pub(crate) const STAGE_GRP: u8 = 1;
pub(crate) const STAGE_MPK_HASH: u8 = 1;
pub(crate) const STAGE_STATE: u8 = 2;
pub(crate) const STAGE_SHADOW: u8 = 3;
pub(crate) const STAGE_ADDR: u8 = 4;
pub(crate) const STAGE_HASH: u8 = 4;
pub(crate) const STAGE_MPK_TABLE: u8 = 4;
pub(crate) const STAGE_FILTER0: u8 = 5;

/// The NetClone switch program.
pub struct NetCloneSwitch {
    pub(crate) cfg: NetCloneConfig,
    pub(crate) layout: Layout,
    /// Global sequence register for request IDs (Algorithm 1: `SEQ`).
    pub(crate) seq: RegisterArray<u32>,
    /// Group ID → (Srv1, Srv2) (`GrpT`).
    pub(crate) grp_t: MatchTable<u16, (ServerId, ServerId)>,
    /// Server ID → (IP, egress port) (`AddrT`; the action also supplies
    /// the port — see module docs).
    pub(crate) addr_t: MatchTable<ServerId, (u32, PortId)>,
    /// Tracked server states (`StateT`): 0 = idle, n = queue length.
    pub(crate) state_t: RegisterArray<u16>,
    /// The shadow copy (`ShadowT`), kept identical by construction (§3.4).
    pub(crate) shadow_t: RegisterArray<u16>,
    /// CRC unit for filter-slot indices.
    pub(crate) filter_hash: HashUnit,
    /// K filter tables (`FilterT`), register arrays of request IDs (§3.5).
    pub(crate) filters: Vec<RegisterArray<u32>>,
    /// L3 exact-match route table: destination IP → egress port.
    pub(crate) route_t: MatchTable<u32, PortId>,
    /// L2 switching table (MAC → port), part of the traditional forwarding
    /// base; control-plane managed only.
    pub(crate) mac_t: MatchTable<u64, PortId>,
    /// Multi-packet affinity: CRC unit over (CLIENT_ID, CLIENT_SEQ).
    pub(crate) mpk_hash: HashUnit,
    /// Multi-packet affinity table: message tags of cloned, unfinished
    /// multi-packet requests (§3.7).
    pub(crate) mpk_t: RegisterArray<u32>,
    /// Registered servers, in SID order (control-plane view).
    pub(crate) servers: Vec<ServerId>,
    /// Data-plane counters.
    pub(crate) counters: SwitchCounters,
}

impl NetCloneSwitch {
    /// Builds the program for `cfg`, laying every table out on the ASIC.
    ///
    /// Panics if the configuration is invalid or does not fit the ASIC —
    /// the moral equivalent of a P4 compile error.
    pub fn new(cfg: NetCloneConfig) -> Self {
        cfg.validate().expect("invalid NetClone configuration");
        let mut layout = Layout::new(cfg.spec);
        let seq = RegisterArray::alloc(&mut layout, "SEQ", STAGE_SEQ, 1, 4).expect(PIPE);
        let route_t =
            MatchTable::alloc(&mut layout, "RouteT", STAGE_ROUTE, 65_536, 4, 2, 1).expect(PIPE);
        // The traditional L2 switching table: not exercised by the parsed
        // L3 metadata this model carries, but allocated because the paper's
        // utilisation figures (§4.1) cover the full program including its
        // L2/L3 base (§3.1 "our switch data plane can perform packet
        // forwarding with the traditional L2/L3 routing module").
        let mac_t: MatchTable<u64, PortId> =
            MatchTable::alloc(&mut layout, "MacT", STAGE_ROUTE, 65_536, 6, 2, 1).expect(PIPE);
        let grp_t = MatchTable::alloc(&mut layout, "GrpT", STAGE_GRP, 65_536, 2, 4, 2).expect(PIPE);
        let state_t = RegisterArray::alloc(&mut layout, "StateT", STAGE_STATE, cfg.max_servers, 2)
            .expect(PIPE);
        let shadow_t =
            RegisterArray::alloc(&mut layout, "ShadowT", STAGE_SHADOW, cfg.max_servers, 2)
                .expect(PIPE);
        let addr_t =
            MatchTable::alloc(&mut layout, "AddrT", STAGE_ADDR, 4_096, 2, 6, 2).expect(PIPE);
        let filter_hash = HashUnit::alloc(
            &mut layout,
            "FilterHash",
            STAGE_HASH,
            4,
            cfg.filter_slots_log2 as u32,
        )
        .expect(PIPE);
        let mpk_hash = HashUnit::alloc(&mut layout, "MpkHash", STAGE_MPK_HASH, 6, 32).expect(PIPE);
        let mpk_t = RegisterArray::alloc(&mut layout, "ClonedReqT", STAGE_MPK_TABLE, 1 << 12, 4)
            .expect(PIPE);
        let mut filters = Vec::with_capacity(cfg.num_filter_tables);
        for i in 0..cfg.num_filter_tables {
            let stage = STAGE_FILTER0 + i as u8;
            filters.push(
                RegisterArray::alloc(
                    &mut layout,
                    &format!("FilterT[{i}]"),
                    stage,
                    cfg.filter_slots(),
                    4,
                )
                .expect(PIPE),
            );
        }
        // Header-rewrite action logic (REQ_ID stamp, CLO marking, SID
        // carry): accounted as action-engine ALUs like the P4 compiler
        // would report them.
        layout
            .allocate(Allocation {
                name: "RewriteActions".into(),
                stage: STAGE_ADDR,
                kind: ResourceKind::ActionEngine,
                sram_bytes: 0,
                hash_bits: 0,
                alus: 3,
                crossbar_bytes: 0,
            })
            .expect(PIPE);
        NetCloneSwitch {
            cfg,
            layout,
            seq,
            grp_t,
            addr_t,
            state_t,
            shadow_t,
            filter_hash,
            filters,
            route_t,
            mac_t,
            mpk_hash,
            mpk_t,
            servers: Vec::new(),
            counters: SwitchCounters::default(),
        }
    }

    /// Builds the paper's prototype configuration.
    pub fn paper_prototype() -> Self {
        Self::new(NetCloneConfig::paper_prototype())
    }

    /// The program's configuration.
    pub fn config(&self) -> &NetCloneConfig {
        &self.cfg
    }

    /// Data-plane counters.
    pub fn counters(&self) -> &SwitchCounters {
        &self.counters
    }

    /// The §4.1-style resource utilisation report.
    pub fn resource_report(&self) -> ResourceReport {
        self.layout.report("NetClone")
    }

    /// The ASIC spec the program is laid out on.
    pub fn spec(&self) -> &AsicSpec {
        self.layout.spec()
    }

    /// Number of installed groups (clients draw `GRP` uniformly from
    /// `0..num_groups`).
    pub fn num_groups(&self) -> u16 {
        self.grp_t.len() as u16
    }

    /// Control-plane peek at a tracked server state (diagnostics/tests).
    pub fn tracked_state(&self, sid: ServerId) -> Option<ServerState> {
        self.state_t.peek(sid as usize).map(ServerState)
    }

    /// Verifies the §3.4 invariant that the shadow table is a faithful copy
    /// of the state table ("the consistency … can be preserved since the
    /// switch always updates the tables at the same time").
    pub fn state_tables_consistent(&self) -> bool {
        (0..self.cfg.max_servers).all(|i| self.state_t.peek(i) == self.shadow_t.peek(i))
    }

    // ------------------------------------------------------------------
    // Packet processing
    // ------------------------------------------------------------------

    fn plain_route(&mut self, pkt: PacketMeta, out: &mut EmissionSink) {
        let mut pass = PacketPass::new();
        let port = self.route_t.lookup(&mut pass, pkt.dst_ip.0).expect(PIPE);
        match port {
            Some(port) => {
                self.counters.routed_plain += 1;
                out.push(Emission {
                    pkt,
                    port,
                    latency_ns: self.cfg.spec.pass_latency_ns,
                });
            }
            None => self.counters.dropped_unroutable += 1,
        }
    }

    /// True when the multi-rack gate says this switch should run NetClone
    /// logic on the packet (§3.7): unstamped, or stamped by us.
    fn gate_allows(&self, pkt: &PacketMeta) -> bool {
        pkt.nc.switch_id == 0 || pkt.nc.switch_id == self.cfg.switch_id
    }

    /// The recirculated-clone pass (Algorithm 1 lines 11–13): mark `CLO=2`,
    /// resolve the clone's destination from `SID`, forward.
    fn process_recirculated(
        &mut self,
        mut pkt: PacketMeta,
        base_latency_ns: u64,
        out: &mut EmissionSink,
    ) {
        let mut pass = PacketPass::new();
        pkt.nc.clo = CloneStatus::Clone;
        let dest = self.addr_t.lookup(&mut pass, pkt.nc.sid).expect(PIPE);
        match dest {
            Some((ip, port)) => {
                self.counters.recirculated += 1;
                pkt.dst_ip = Ipv4(ip);
                out.push(Emission {
                    pkt,
                    port,
                    latency_ns: base_latency_ns
                        + self.cfg.spec.recirc_latency_ns
                        + self.cfg.spec.pass_latency_ns,
                });
            }
            None => self.counters.dropped_unroutable += 1,
        }
    }

    /// Fresh-request pass (Algorithm 1 lines 1–10).
    fn process_request(&mut self, mut pkt: PacketMeta, out: &mut EmissionSink) {
        let mut pass = PacketPass::new();
        self.counters.requests += 1;

        // Stage 0: assign the request ID (lines 2–3). Under the TCP-safe
        // mode the ID derives from the client's Lamport tuple instead and
        // the sequence register is skipped by predication (§3.7).
        let req_id: ReqId = match self.cfg.req_id_mode {
            RequestIdMode::SwitchSequence => {
                let raw = self
                    .seq
                    .read_modify_write(&mut pass, 0, |v| v.wrapping_add(1))
                    .expect(PIPE)
                    .wrapping_add(1);
                // Avoid 0: it is the filter tables' empty-slot sentinel.
                if raw == 0 {
                    1
                } else {
                    raw
                }
            }
            RequestIdMode::ClientLamport => {
                let id = ((pkt.nc.client_id as u32) << 20) | (pkt.nc.client_seq & 0x000F_FFFF);
                if id == 0 {
                    1
                } else {
                    id
                }
            }
        };
        pkt.nc.req_id = req_id;
        // Stamp the multi-rack identity (§3.7).
        pkt.nc.switch_id = self.cfg.switch_id;

        // Stage 1: group → candidate pair (line 4).
        let Some((s1, s2)) = self.grp_t.lookup(&mut pass, pkt.nc.grp).expect(PIPE) else {
            self.counters.dropped_unroutable += 1;
            return;
        };

        // Stage 1: multi-packet message hash (CRC of the Lamport tuple),
        // computed whether or not the feature is on — hash units run
        // unconditionally on hardware. The low bits index the affinity
        // table; the full (never-zero) value is the message tag.
        let mpk_full = {
            let mut data = [0u8; 6];
            data[..2].copy_from_slice(&pkt.nc.client_id.to_be_bytes());
            data[2..].copy_from_slice(&pkt.nc.client_seq.to_be_bytes());
            self.mpk_hash.hash(&mut pass, &data).expect(PIPE)
        };
        let mpk_tag = mpk_full | 1; // never zero: zero is the empty-slot sentinel
        let mpk_slot = (mpk_full & ((1 << 12) - 1)) as usize;

        // Stages 2–3: the two tracked states — one from the state table,
        // one from its shadow (lines 6; the §3.4 workaround).
        let st1 = self.state_t.read(&mut pass, s1 as usize).expect(PIPE);
        let st2 = self.shadow_t.read(&mut pass, s2 as usize).expect(PIPE);
        let both_idle = self.cfg.clone_condition.allows(st1, st2);

        // Clients mark non-cloneable requests (writes, §5.5) by sending
        // STATE=1 in the request header; the field is otherwise unused on
        // the request path.
        let cloneable = pkt.nc.state.is_idle();

        // Stage 4: multi-packet affinity (§3.7). One RMW both queries the
        // table and (when this packet clones) installs the tag, so later
        // packets of the same message are cloned regardless of state.
        let clone_by_state = self.cfg.cloning_enabled && both_idle && cloneable;
        let forced = if self.cfg.multi_packet_enabled {
            let old = self
                .mpk_t
                .read_modify_write(&mut pass, mpk_slot, |cur| {
                    if clone_by_state {
                        mpk_tag
                    } else {
                        cur
                    }
                })
                .expect(PIPE);
            old == mpk_tag && self.cfg.cloning_enabled && cloneable
        } else {
            false
        };

        let do_clone = clone_by_state || forced;
        if forced && !clone_by_state {
            self.counters.clone_forced_multipacket += 1;
        }

        if do_clone {
            // Lines 7–9: mark as cloned original, remember the clone's
            // destination in SID, multicast (egress + recirculation).
            self.counters.cloned += 1;
            pkt.nc.clo = CloneStatus::ClonedOriginal;
            pkt.nc.sid = s2;
            let Some((ip1, port1)) = self.addr_t.lookup(&mut pass, s1).expect(PIPE) else {
                self.counters.dropped_unroutable += 1;
                return;
            };
            pkt.dst_ip = Ipv4(ip1);
            out.push(Emission {
                pkt,
                port: port1,
                latency_ns: self.cfg.spec.pass_latency_ns,
            });
            // The multicast copy re-enters through the loopback port and
            // completes on a second pass (lines 11–13).
            self.process_recirculated(pkt, self.cfg.spec.pass_latency_ns, out);
        } else {
            if self.cfg.cloning_enabled {
                if !cloneable {
                    self.counters.clone_skipped_uncloneable += 1;
                } else {
                    self.counters.clone_skipped_busy += 1;
                }
            }
            // Destination selection: base design forwards to Srv1; the
            // RackSched integration joins the shorter queue (§3.7).
            let dst = match self.cfg.scheduling {
                Scheduling::Random => s1,
                Scheduling::RackSched => {
                    if st2 < st1 {
                        self.counters.jsq_fallbacks += 1;
                        s2
                    } else {
                        s1
                    }
                }
            };
            pkt.nc.clo = CloneStatus::NotCloned;
            let Some((ip, port)) = self.addr_t.lookup(&mut pass, dst).expect(PIPE) else {
                self.counters.dropped_unroutable += 1;
                return;
            };
            pkt.dst_ip = Ipv4(ip);
            out.push(Emission {
                pkt,
                port,
                latency_ns: self.cfg.spec.pass_latency_ns,
            });
        }
    }

    /// Response pass (Algorithm 1 lines 14–26).
    fn process_response(&mut self, pkt: PacketMeta, out: &mut EmissionSink) {
        let mut pass = PacketPass::new();
        self.counters.responses += 1;

        // Stage 0: egress port toward the client.
        let Some(port) = self.route_t.lookup(&mut pass, pkt.dst_ip.0).expect(PIPE) else {
            self.counters.dropped_unroutable += 1;
            return;
        };

        // Stages 2–3: update both state tables with the piggybacked state
        // (lines 15–16) — always, so the switch tracks the latest state.
        let sid = pkt.nc.sid as usize;
        if sid < self.cfg.max_servers {
            self.state_t
                .write(&mut pass, sid, pkt.nc.state.0)
                .expect(PIPE);
            self.shadow_t
                .write(&mut pass, sid, pkt.nc.state.0)
                .expect(PIPE);
        }

        // Lines 17–25: the filter engages only for cloned requests.
        if pkt.nc.clo.was_cloned() && self.cfg.filtering_enabled {
            // Stage 4: slot index = CRC(REQ_ID) (line 18).
            let h = self
                .filter_hash
                .hash(&mut pass, &pkt.nc.req_id.to_be_bytes())
                .expect(PIPE) as usize;
            // The client-chosen IDX picks the *table* (§3.5).
            let t = (pkt.nc.idx as usize) % self.filters.len();
            let req_id = pkt.nc.req_id;
            // One RMW performs the whole protocol: if the slot holds our
            // ID we are the slower response → clear and drop (lines
            // 19–21); otherwise install our fingerprint, overwriting
            // whatever was there (lines 22–23; overwrites are allowed to
            // survive collisions and lost responses).
            let old = self.filters[t]
                .read_modify_write(&mut pass, h, |cur| if cur == req_id { 0 } else { req_id })
                .expect(PIPE);
            if old == req_id {
                self.counters.responses_filtered += 1;
                return; // Drop(pkt)
            }
            if old != 0 {
                self.counters.filter_overwrites += 1;
            }
        }

        out.push(Emission {
            pkt,
            port,
            latency_ns: self.cfg.spec.pass_latency_ns,
        });
    }
}

impl DataPlane for NetCloneSwitch {
    fn name(&self) -> &'static str {
        "NetClone"
    }

    fn process(&mut self, pkt: PacketMeta, ingress: PortId, _now_ns: u64, out: &mut EmissionSink) {
        // §3.2: the reserved L4 port selects NetClone processing.
        if !pkt.is_netclone() {
            return self.plain_route(pkt, out);
        }
        match pkt.nc.msg_type {
            MsgType::Req => {
                // The recirculated clone: CLO=1 arriving on the loopback
                // port (lines 11–13).
                if pkt.nc.clo == CloneStatus::ClonedOriginal && ingress == self.cfg.recirc_port {
                    return self.process_recirculated(pkt, 0, out);
                }
                // Multi-rack gate (§3.7): only the client-side ToR clones.
                if !self.gate_allows(&pkt) {
                    return self.plain_route(pkt, out);
                }
                self.process_request(pkt, out)
            }
            MsgType::Resp => {
                if !self.gate_allows(&pkt) {
                    return self.plain_route(pkt, out);
                }
                self.process_response(pkt, out)
            }
        }
    }

    /// §3.6 "Switch failures": soft state (sequence number, server states,
    /// filter fingerprints, multi-packet tags) is lost on a power cycle;
    /// match-action tables are reinstalled by the control plane and are
    /// retained here.
    fn reset_soft_state(&mut self) {
        self.seq.reset();
        self.state_t.reset();
        self.shadow_t.reset();
        for f in &mut self.filters {
            f.reset();
        }
        self.mpk_t.reset();
    }
}
