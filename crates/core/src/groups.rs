//! Group-table construction.
//!
//! §3.3: "The number of groups is 2·C(n,2) as we choose two servers between
//! n servers. Multiplying by two is to sustain the randomness of server
//! selection because the switch forwards the request to the first candidate
//! server if cloning conditions are not satisfied."
//!
//! In other words: groups are the **ordered** 2-permutations of the server
//! set — n·(n−1) of them — so that a uniformly random group ID gives a
//! uniformly random first candidate.

use netclone_proto::ServerId;

/// Enumerates all ordered pairs of distinct servers, in a deterministic
/// order: pair `(a, b)` for every `a`, then every `b ≠ a`.
pub fn build_groups(servers: &[ServerId]) -> Vec<(ServerId, ServerId)> {
    let mut out = Vec::with_capacity(
        servers
            .len()
            .saturating_mul(servers.len().saturating_sub(1)),
    );
    for &a in servers {
        for &b in servers {
            if a != b {
                out.push((a, b));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_servers_give_two_groups() {
        // The paper's example: with servers {1, 2} the groups are
        // {Srv1,Srv2} and {Srv2,Srv1}.
        let g = build_groups(&[1, 2]);
        assert_eq!(g, vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn count_is_n_times_n_minus_1() {
        for n in 2u16..10 {
            let ids: Vec<ServerId> = (0..n).collect();
            let g = build_groups(&ids);
            assert_eq!(g.len(), (n * (n - 1)) as usize);
        }
    }

    #[test]
    fn first_candidates_are_uniform() {
        let ids: Vec<ServerId> = (0..6).collect();
        let g = build_groups(&ids);
        for s in 0..6u16 {
            let firsts = g.iter().filter(|(a, _)| *a == s).count();
            assert_eq!(firsts, 5, "server {s} must lead exactly n-1 groups");
        }
    }

    #[test]
    fn no_self_pairs_and_no_duplicates() {
        let ids: Vec<ServerId> = vec![3, 7, 11, 20];
        let g = build_groups(&ids);
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &g {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)), "duplicate pair ({a},{b})");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(build_groups(&[]).is_empty());
        assert!(build_groups(&[5]).is_empty());
    }
}
