//! # netclone-linksim
//!
//! A congestion-aware link model for the deterministic DES: every link
//! has a configurable bandwidth (serialization delay derived from the
//! on-wire packet size carried by [`netclone_proto::PacketMeta`]), a
//! bounded FIFO queue with tail-drop, an ECN mark threshold, and
//! per-link forward/drop/mark counters.
//!
//! ## The busy-until discipline
//!
//! A [`Link`] does not queue packet objects: because service is FIFO at a
//! fixed rate, the queue is fully described by one number — the time the
//! transmitter goes idle (`busy_until`). Offering a packet at `now`:
//!
//! * the backlog is `busy_until - now` of serialization time, converted
//!   back to bytes at the link rate;
//! * if the backlog plus the packet would exceed the queue capacity, the
//!   packet is **tail-dropped** (counted, no state change);
//! * otherwise the packet departs at `max(busy_until, now) + ser(bytes)`
//!   and `busy_until` advances to that departure — and if the backlog at
//!   enqueue was already past the ECN threshold, the packet is marked.
//!
//! All arithmetic is integer (picoseconds per byte, fixed at
//! construction), so a link is a pure deterministic function of its
//! offer sequence — the property the sharded event loop's bit-identity
//! proof needs: a link is only ever touched from its owning rack's
//! event domain, whose execution order is shard-count-invariant.
//!
//! The propagation delay of the wire is *not* modeled here — it stays
//! with the caller (the simulator's calibrated one-way latencies), so a
//! zero-length queue degenerates to the pre-linksim fixed-latency hop.

use netclone_proto::PacketMeta;

/// Outcome of offering one packet to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The packet was enqueued; serialization completes at `depart_ns`.
    Forward {
        /// When the last bit leaves the transmitter (propagation delay is
        /// the caller's).
        depart_ns: u64,
        /// The backlog at enqueue exceeded the ECN threshold.
        ecn_marked: bool,
    },
    /// The bounded queue was full: tail-drop.
    Drop,
}

/// Monotonic per-link counters. `offered == forwarded + dropped` by
/// construction — the conservation invariant the proptests pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets accepted (serialized and departed).
    pub forwarded: u64,
    /// Packets tail-dropped at the bounded queue.
    pub dropped: u64,
    /// Forwarded packets that were ECN-marked at enqueue.
    pub ecn_marked: u64,
}

impl LinkCounters {
    /// Field-wise accumulation (for fabric-wide totals).
    pub fn add(&mut self, other: &LinkCounters) {
        self.offered += other.offered;
        self.forwarded += other.forwarded;
        self.dropped += other.dropped;
        self.ecn_marked += other.ecn_marked;
    }
}

/// One unidirectional link: a rate, a bounded FIFO queue, and counters.
#[derive(Clone, Debug)]
pub struct Link {
    /// Serialization cost, picoseconds per byte (≥ 1; fixed at build so
    /// the hot path is pure integer arithmetic).
    ps_per_byte: u64,
    /// Queue capacity in bytes; an arriving packet that would push the
    /// backlog past this is dropped.
    queue_bytes: u64,
    /// ECN mark threshold in bytes (0 disables marking).
    ecn_bytes: u64,
    /// Rate-collapse multiplier for link-flap fault injection: the
    /// effective serialization cost is `ps_per_byte * degrade` (≥ 1, so a
    /// healthy link pays no arithmetic it did not already pay).
    degrade: u64,
    /// When the transmitter goes idle.
    busy_until_ns: u64,
    counters: LinkCounters,
}

impl Link {
    /// A link of `gbps` gigabits/second with a `queue_bytes`-byte queue
    /// and an ECN threshold (`0` disables marking).
    pub fn new(gbps: f64, queue_bytes: u32, ecn_threshold_bytes: u32) -> Self {
        assert!(gbps > 0.0, "a link needs positive bandwidth");
        // 1 byte at G gbit/s takes 8/G ns = 8000/G ps.
        let ps_per_byte = ((8_000.0 / gbps).round() as u64).max(1);
        Link {
            ps_per_byte,
            queue_bytes: u64::from(queue_bytes),
            ecn_bytes: u64::from(ecn_threshold_bytes),
            degrade: 1,
            busy_until_ns: 0,
            counters: LinkCounters::default(),
        }
    }

    /// Sets the link-flap degradation multiplier: `factor` > 1 collapses
    /// the effective rate to `1/factor` of nominal (queued backlog keeps
    /// its departure schedule; only packets offered after the edge pay the
    /// degraded rate). `factor ≤ 1` restores the nominal rate. Integer, so
    /// a flap is as deterministic as the link itself.
    #[inline]
    pub fn set_degradation(&mut self, factor: u64) {
        self.degrade = factor.max(1);
    }

    /// The current degradation multiplier (1 = healthy).
    #[inline]
    pub fn degradation(&self) -> u64 {
        self.degrade
    }

    /// The effective serialization cost under the current degradation.
    #[inline]
    fn effective_ps_per_byte(&self) -> u64 {
        self.ps_per_byte * self.degrade
    }

    /// Serialization delay of `bytes` on this link, ns (rounded up).
    #[inline]
    pub fn serialization_ns(&self, bytes: u32) -> u64 {
        (u64::from(bytes) * self.effective_ps_per_byte()).div_ceil(1_000)
    }

    /// Bytes queued ahead of a packet arriving at `now_ns` (the backlog
    /// the bounded queue and the ECN threshold are compared against).
    #[inline]
    pub fn queued_bytes(&self, now_ns: u64) -> u64 {
        let backlog_ns = self.busy_until_ns.saturating_sub(now_ns);
        backlog_ns * 1_000 / self.effective_ps_per_byte()
    }

    /// Offers a `wire_bytes`-byte packet at `now_ns`.
    #[inline]
    pub fn offer(&mut self, now_ns: u64, wire_bytes: u32) -> Verdict {
        self.counters.offered += 1;
        let backlog = self.queued_bytes(now_ns);
        if backlog + u64::from(wire_bytes) > self.queue_bytes {
            self.counters.dropped += 1;
            return Verdict::Drop;
        }
        let ecn_marked = self.ecn_bytes > 0 && backlog >= self.ecn_bytes;
        let depart_ns = self.busy_until_ns.max(now_ns) + self.serialization_ns(wire_bytes);
        self.busy_until_ns = depart_ns;
        self.counters.forwarded += 1;
        if ecn_marked {
            self.counters.ecn_marked += 1;
        }
        Verdict::Forward {
            depart_ns,
            ecn_marked,
        }
    }

    /// [`Link::offer`] with the size taken from a packet's on-wire frame
    /// length ([`PacketMeta::wire_bytes`]).
    #[inline]
    pub fn offer_meta(&mut self, now_ns: u64, meta: &PacketMeta) -> Verdict {
        self.offer(now_ns, u32::from(meta.wire_bytes))
    }

    /// Counter snapshot.
    #[inline]
    pub fn counters(&self) -> LinkCounters {
        self.counters
    }
}

/// The link configuration of one fabric: edge (host↔leaf) and fabric
/// (leaf↔upper-tier) rates plus the shared queue shape.
///
/// [`LinkSpec::oversubscribed`] derives the fabric rate from a target
/// oversubscription ratio under the canonical k-ary fat-tree host count
/// (`k/2` hosts per leaf, `k/2` uplinks): *uplink = edge / ratio*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Host access-link bandwidth, Gbit/s.
    pub edge_gbps: f64,
    /// Per-uplink fabric bandwidth, Gbit/s.
    pub fabric_gbps: f64,
    /// Per-link queue capacity, bytes.
    pub queue_bytes: u32,
    /// Per-link ECN mark threshold, bytes (0 disables marking).
    pub ecn_threshold_bytes: u32,
}

impl LinkSpec {
    /// A non-blocking fabric: every link at `gbps`.
    pub fn flat(gbps: f64, queue_bytes: u32) -> Self {
        LinkSpec {
            edge_gbps: gbps,
            fabric_gbps: gbps,
            queue_bytes,
            ecn_threshold_bytes: queue_bytes / 3,
        }
    }

    /// Fabric links scaled for an `oversub`:1 leaf oversubscription ratio
    /// (canonical k-ary shape: uplink rate = edge rate / ratio; 1.0 is
    /// non-blocking).
    pub fn oversubscribed(edge_gbps: f64, oversub: f64, queue_bytes: u32) -> Self {
        assert!(oversub >= 1.0, "oversubscription ratio is ≥ 1");
        LinkSpec {
            edge_gbps,
            fabric_gbps: edge_gbps / oversub,
            queue_bytes,
            ecn_threshold_bytes: queue_bytes / 3,
        }
    }

    /// Builds one host access link.
    pub fn edge_link(&self) -> Link {
        Link::new(self.edge_gbps, self.queue_bytes, self.ecn_threshold_bytes)
    }

    /// Builds one leaf↔upper-tier fabric link.
    pub fn fabric_link(&self) -> Link {
        Link::new(self.fabric_gbps, self.queue_bytes, self.ecn_threshold_bytes)
    }

    /// The implied leaf oversubscription ratio.
    pub fn oversub_ratio(&self) -> f64 {
        self.edge_gbps / self.fabric_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netclone_proto::{Ipv4, NetCloneHdr, PacketMeta};

    #[test]
    fn serialization_matches_rate() {
        let l = Link::new(100.0, 1 << 20, 0);
        // 100 Gb/s = 80 ps/byte: 1500 B = 120_000 ps = 120 ns.
        assert_eq!(l.serialization_ns(1_500), 120);
        // Rounds up: 84 B = 6_720 ps → 7 ns.
        assert_eq!(l.serialization_ns(84), 7);
        let slow = Link::new(1.0, 1 << 20, 0);
        assert_eq!(slow.serialization_ns(1_500), 12_000);
    }

    #[test]
    fn idle_link_departs_after_serialization_only() {
        let mut l = Link::new(10.0, 1 << 20, 0);
        match l.offer(1_000, 1_000) {
            Verdict::Forward {
                depart_ns,
                ecn_marked,
            } => {
                assert_eq!(depart_ns, 1_000 + 800);
                assert!(!ecn_marked);
            }
            Verdict::Drop => panic!("idle link dropped"),
        }
        assert_eq!(l.counters().forwarded, 1);
    }

    #[test]
    fn backlog_accumulates_and_drains() {
        let mut l = Link::new(10.0, 10_000, 0);
        // Three back-to-back 1000 B packets at t=0: 800 ns each, FIFO.
        let d: Vec<u64> = (0..3)
            .map(|_| match l.offer(0, 1_000) {
                Verdict::Forward { depart_ns, .. } => depart_ns,
                Verdict::Drop => panic!("under capacity"),
            })
            .collect();
        assert_eq!(d, vec![800, 1_600, 2_400]);
        assert_eq!(l.queued_bytes(0), 3_000);
        assert_eq!(l.queued_bytes(800), 2_000);
        assert_eq!(l.queued_bytes(2_400), 0);
        // After the drain the link is idle again.
        match l.offer(5_000, 1_000) {
            Verdict::Forward { depart_ns, .. } => assert_eq!(depart_ns, 5_800),
            Verdict::Drop => panic!("idle link dropped"),
        }
    }

    #[test]
    fn bounded_queue_tail_drops() {
        let mut l = Link::new(10.0, 2_500, 0);
        assert!(matches!(l.offer(0, 1_000), Verdict::Forward { .. }));
        assert!(matches!(l.offer(0, 1_000), Verdict::Forward { .. }));
        // Backlog is 2000 B; a third 1000 B packet would exceed 2500.
        assert_eq!(l.offer(0, 1_000), Verdict::Drop);
        let c = l.counters();
        assert_eq!((c.offered, c.forwarded, c.dropped), (3, 2, 1));
        // A drop leaves the schedule untouched: the queue drains and the
        // link accepts again.
        assert!(matches!(l.offer(900, 1_000), Verdict::Forward { .. }));
    }

    #[test]
    fn ecn_marks_past_threshold() {
        let mut l = Link::new(10.0, 10_000, 1_500);
        let marked = |v: Verdict| match v {
            Verdict::Forward { ecn_marked, .. } => ecn_marked,
            Verdict::Drop => panic!("under capacity"),
        };
        assert!(!marked(l.offer(0, 1_000))); // backlog 0
        assert!(!marked(l.offer(0, 1_000))); // backlog 1000 < 1500
        assert!(marked(l.offer(0, 1_000))); // backlog 2000 ≥ 1500
        assert_eq!(l.counters().ecn_marked, 1);
        // Marking disabled at threshold 0.
        let mut off = Link::new(10.0, 10_000, 0);
        off.offer(0, 1_000);
        assert!(!marked(off.offer(0, 1_000)));
        assert_eq!(off.counters().ecn_marked, 0);
    }

    #[test]
    fn offer_meta_uses_wire_bytes() {
        let meta =
            PacketMeta::netclone_request(Ipv4::client(0), NetCloneHdr::request(1, 0, 0, 0), 84);
        let mut l = Link::new(100.0, 1 << 20, 0);
        match l.offer_meta(0, &meta) {
            Verdict::Forward { depart_ns, .. } => assert_eq!(depart_ns, 7),
            Verdict::Drop => panic!("idle link dropped"),
        }
    }

    #[test]
    fn degradation_collapses_and_restores_the_rate() {
        let mut l = Link::new(10.0, 1 << 20, 0);
        assert_eq!(l.serialization_ns(1_000), 800);
        l.set_degradation(10);
        assert_eq!(l.degradation(), 10);
        assert_eq!(l.serialization_ns(1_000), 8_000);
        match l.offer(0, 1_000) {
            Verdict::Forward { depart_ns, .. } => assert_eq!(depart_ns, 8_000),
            Verdict::Drop => panic!("idle link dropped"),
        }
        // Restoring (any factor ≤ 1 clamps to 1) brings back the nominal
        // rate; the in-flight schedule is untouched.
        l.set_degradation(0);
        assert_eq!(l.degradation(), 1);
        match l.offer(8_000, 1_000) {
            Verdict::Forward { depart_ns, .. } => assert_eq!(depart_ns, 8_800),
            Verdict::Drop => panic!("idle link dropped"),
        }
    }

    #[test]
    fn spec_oversubscription_arithmetic() {
        let s = LinkSpec::oversubscribed(10.0, 4.0, 150_000);
        assert!((s.fabric_gbps - 2.5).abs() < 1e-9);
        assert!((s.oversub_ratio() - 4.0).abs() < 1e-9);
        let flat = LinkSpec::flat(10.0, 150_000);
        assert!((flat.oversub_ratio() - 1.0).abs() < 1e-9);
        // The fabric link of a 4:1 spec is 4x slower than its edge link.
        assert_eq!(
            s.fabric_link().serialization_ns(1_000),
            4 * s.edge_link().serialization_ns(1_000)
        );
    }
}
