//! Property tests for the link model: conservation (offered is exactly
//! forwarded plus dropped), FIFO monotone departures, bounded backlog,
//! rate-exactness against a naive reference, and drop-independence of
//! the schedule.

use netclone_linksim::{Link, Verdict};
use proptest::prelude::*;

/// An arbitrary offer script: (gap to next arrival, wire bytes).
fn arb_script() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec(
        (
            prop_oneof![Just(0u64), 0u64..200, 0u64..100_000],
            prop_oneof![Just(84u32), 64u32..1_500, Just(9_000u32)],
        ),
        1..200,
    )
}

proptest! {
    /// Every offered packet is either forwarded or dropped, exactly once.
    #[test]
    fn conservation(gbps in 1u32..400, queue in 1_024u32..1_000_000, script in arb_script()) {
        let mut l = Link::new(f64::from(gbps), queue, queue / 3);
        let (mut fwd, mut drop) = (0u64, 0u64);
        let mut now = 0u64;
        for (gap, bytes) in script {
            now += gap;
            match l.offer(now, bytes) {
                Verdict::Forward { .. } => fwd += 1,
                Verdict::Drop => drop += 1,
            }
        }
        let c = l.counters();
        prop_assert_eq!(c.forwarded, fwd);
        prop_assert_eq!(c.dropped, drop);
        prop_assert_eq!(c.offered, c.forwarded + c.dropped);
        prop_assert!(c.ecn_marked <= c.forwarded);
    }

    /// Departures are strictly FIFO (monotone non-decreasing), never
    /// before the arrival, and the backlog never exceeds the queue bound.
    #[test]
    fn fifo_departures_and_bounded_backlog(
        gbps in 1u32..400,
        queue in 9_000u32..500_000,
        script in arb_script(),
    ) {
        let mut l = Link::new(f64::from(gbps), queue, 0);
        let mut now = 0u64;
        let mut last_depart = 0u64;
        for (gap, bytes) in script {
            now += gap;
            prop_assert!(l.queued_bytes(now) <= u64::from(queue));
            if let Verdict::Forward { depart_ns, .. } = l.offer(now, bytes) {
                prop_assert!(depart_ns >= now + l.serialization_ns(bytes));
                prop_assert!(depart_ns >= last_depart, "FIFO order violated");
                last_depart = depart_ns;
            }
            prop_assert!(l.queued_bytes(now) <= u64::from(queue));
        }
    }

    /// The busy-until link matches a naive reference that replays the
    /// accepted packets one by one: depart = max(prev_depart, arrival) +
    /// serialization.
    #[test]
    fn matches_naive_reference(gbps in 1u32..400, script in arb_script()) {
        // Unbounded queue: the reference models service order only.
        let mut l = Link::new(f64::from(gbps), u32::MAX, 0);
        let mut now = 0u64;
        let mut ref_busy = 0u64;
        for (gap, bytes) in script {
            now += gap;
            let want = ref_busy.max(now) + l.serialization_ns(bytes);
            match l.offer(now, bytes) {
                Verdict::Forward { depart_ns, .. } => {
                    prop_assert_eq!(depart_ns, want);
                    ref_busy = want;
                }
                Verdict::Drop => prop_assert!(false, "unbounded queue dropped"),
            }
        }
    }

    /// A tail-drop leaves the departure schedule untouched: the accepted
    /// subsequence departs exactly as if the dropped packets were never
    /// offered.
    #[test]
    fn drops_do_not_perturb_schedule(
        gbps in 1u32..100,
        queue in 1_024u32..20_000,
        script in arb_script(),
    ) {
        let mut bounded = Link::new(f64::from(gbps), queue, 0);
        let mut shadow = Link::new(f64::from(gbps), u32::MAX, 0);
        let mut now = 0u64;
        for (gap, bytes) in script {
            now += gap;
            if let Verdict::Forward { depart_ns, .. } = bounded.offer(now, bytes) {
                // Replay only the accepted packets through the shadow.
                match shadow.offer(now, bytes) {
                    Verdict::Forward { depart_ns: want, .. } => {
                        prop_assert_eq!(depart_ns, want);
                    }
                    Verdict::Drop => prop_assert!(false, "shadow is unbounded"),
                }
            }
        }
    }
}
